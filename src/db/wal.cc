#include "db/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_set>

#include "util/fault.h"

namespace qc::db {

namespace {

/// 8-byte file magics; each file's header is the magic followed by a u64
/// little-endian generation number. A snapshot at generation G supersedes
/// every log record at generation <= G (see Wal class comment).
constexpr char kLogMagic[8] = {'Q', 'C', 'W', 'A', 'L', 'v', '2', '\n'};
constexpr char kSnapMagic[8] = {'Q', 'C', 'S', 'N', 'A', 'P', '2', '\n'};
constexpr char kLogFile[] = "wal.log";
constexpr char kLogTmp[] = "wal.log.tmp";
constexpr char kSnapshotFile[] = "snapshot.dat";
constexpr char kSnapshotTmp[] = "snapshot.tmp";
constexpr std::size_t kHeaderBytes = 16;

/// A single record's payload never legitimately reaches 1 GiB; anything
/// larger read back from disk is corruption, not data.
constexpr std::uint64_t kMaxRecordBytes = std::uint64_t{1} << 30;
constexpr std::size_t kMaxRelationName = 1 << 16;
/// Nullary tuples occupy zero payload bytes, so the per-byte bound in
/// ReadTuples cannot cap their row count; a corrupt count must not drive
/// a multi-gigabyte reserve. No legitimate nullary batch approaches this.
constexpr std::uint64_t kMaxNullaryRows = std::uint64_t{1} << 20;

// --- CRC32 (IEEE 802.3, reflected 0xEDB88320) ---------------------------

const std::uint32_t* Crc32Table() {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t Crc32(std::string_view data) {
  const std::uint32_t* table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- little-endian scalar packing (explicit, platform-independent) ------

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked cursor over a payload; any read past the end flips
/// `ok` and sticks there, so decode loops cannot run off the buffer.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  bool Need(std::size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string_view Bytes(std::size_t n) {
    if (!Need(n)) return {};
    std::string_view v = data.substr(pos, n);
    pos += n;
    return v;
  }
};

void PutTuples(std::string* out, int arity,
               const std::vector<Tuple>& tuples) {
  PutU32(out, static_cast<std::uint32_t>(arity));
  PutU64(out, tuples.size());
  for (const Tuple& t : tuples) {
    for (Value v : t) PutU64(out, static_cast<std::uint64_t>(v));
  }
}

bool ReadTuples(Reader* r, int* arity, std::vector<Tuple>* tuples) {
  *arity = static_cast<int>(r->U32());
  const std::uint64_t rows = r->U64();
  if (!r->ok || *arity < 0) return false;
  // Every value is 8 bytes; reject row counts the payload cannot hold
  // before reserving anything. Nullary rows hold no bytes, so they get
  // their own (generous) cap instead.
  const std::uint64_t remaining = r->data.size() - r->pos;
  if (*arity == 0) {
    if (rows > kMaxNullaryRows) return false;
  } else if (rows > remaining / 8 / static_cast<std::uint64_t>(*arity)) {
    return false;
  }
  tuples->reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) {
    Tuple t(static_cast<std::size_t>(*arity));
    for (int c = 0; c < *arity; ++c) {
      t[static_cast<std::size_t>(c)] = static_cast<Value>(r->U64());
    }
    if (!r->ok) return false;
    tuples->push_back(std::move(t));
  }
  return r->ok;
}

// --- POSIX helpers ------------------------------------------------------

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool WriteAll(int fd, std::string_view data, std::string* error) {
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("wal write");
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadWholeFile(const std::string& path, std::string* out, bool* exists,
                   std::string* error) {
  *exists = false;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return true;
    if (error != nullptr) *error = Errno("open " + path);
    return false;
  }
  *exists = true;
  out->clear();
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("read " + path);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool SyncDir(const std::string& dir, std::string* error) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open dir " + dir);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok && error != nullptr) *error = Errno("fsync dir " + dir);
  ::close(fd);
  return ok;
}

std::string FileHeader(const char (&magic)[8], std::uint64_t generation) {
  std::string header(magic, sizeof(magic));
  PutU64(&header, generation);
  return header;
}

/// False when `data` lacks a complete header or the magic differs.
bool ParseHeader(std::string_view data, const char (&magic)[8],
                 std::uint64_t* generation) {
  if (data.size() < kHeaderBytes) return false;
  if (data.compare(0, sizeof(magic), magic, sizeof(magic)) != 0) {
    return false;
  }
  Reader r{data, sizeof(magic)};
  *generation = r.U64();
  return true;
}

/// Reads at most the first `n` bytes of `path` (fewer if the file is
/// shorter). Missing file: true with *exists = false.
bool ReadPrefix(const std::string& path, std::size_t n, std::string* out,
                bool* exists, std::string* error) {
  *exists = false;
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return true;
    if (error != nullptr) *error = Errno("open " + path);
    return false;
  }
  *exists = true;
  char buf[kHeaderBytes];
  while (out->size() < n) {
    ssize_t r = ::read(fd, buf, std::min(sizeof(buf), n - out->size()));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("read " + path);
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return true;
}

/// Best-effort peek at snapshot.dat's generation (0 = none/unreadable).
/// A fresh log must open at a strictly newer generation, or recovery
/// would discard its records as already covered by the snapshot.
std::uint64_t SnapshotGeneration(const std::string& dir) {
  std::string head;
  bool exists = false;
  if (!ReadPrefix(dir + "/" + kSnapshotFile, kHeaderBytes, &head, &exists,
                  nullptr) ||
      !exists) {
    return 0;
  }
  std::uint64_t generation = 0;
  ParseHeader(head, kSnapMagic, &generation);
  return generation;
}

/// Iterates `data` (past the 16-byte header) record by record. Returns the
/// offset one past the last valid record; `*hard_error` is set (with a
/// message) when a CRC-valid record fails to decode or `on_record`
/// rejects it — corruption beyond a torn tail.
std::uint64_t WalkRecords(
    std::string_view data, std::uint64_t start,
    const std::function<bool(const WalRecord&, std::string*)>& on_record,
    bool* hard_error, std::string* error) {
  std::uint64_t pos = start;
  while (true) {
    if (data.size() - pos < 8) return pos;
    Reader header{data, static_cast<std::size_t>(pos)};
    const std::uint64_t len = header.U32();
    const std::uint32_t crc = header.U32();
    if (len > kMaxRecordBytes || data.size() - pos - 8 < len) return pos;
    std::string_view payload =
        data.substr(static_cast<std::size_t>(pos) + 8,
                    static_cast<std::size_t>(len));
    if (Crc32(payload) != crc) return pos;
    WalRecord record;
    std::string decode_error;
    if (!DecodeWalRecord(payload, &record, &decode_error)) {
      *hard_error = true;
      if (error != nullptr) {
        *error = "checksummed record failed to decode (" + decode_error +
                 ") — refusing to guess past it";
      }
      return pos;
    }
    if (!on_record(record, error)) {
      *hard_error = true;
      return pos;
    }
    pos += 8 + len;
  }
}

}  // namespace

bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out) {
  if (text == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (text == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (text == "off") {
    *out = FsyncPolicy::kOff;
  } else {
    return false;
  }
  return true;
}

const char* ToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "always";
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.kind));
  PutU64(&out, record.request_id);
  switch (record.kind) {
    case WalRecord::Kind::kSetRelation:
    case WalRecord::Kind::kAddTuples: {
      PutU32(&out, static_cast<std::uint32_t>(record.relation.size()));
      out += record.relation;
      // kAddTuples callers leave `arity` at 0 (the relation already fixes
      // it); the wire format needs the real width, so derive it from the
      // tuples themselves.
      int arity = record.arity;
      if (arity == 0 && !record.tuples.empty()) {
        arity = static_cast<int>(record.tuples.front().size());
      }
      PutTuples(&out, arity, record.tuples);
      break;
    }
    case WalRecord::Kind::kDataset:
      out.push_back(record.continue_on_error ? '\1' : '\0');
      PutU64(&out, record.dataset.size());
      out += record.dataset;
      break;
    case WalRecord::Kind::kDedup:
      PutU64(&out, record.dedup_ids.size());
      for (std::uint64_t id : record.dedup_ids) PutU64(&out, id);
      break;
    case WalRecord::Kind::kViewDef:
      PutU32(&out, static_cast<std::uint32_t>(record.relation.size()));
      out += record.relation;
      out.push_back(static_cast<char>(record.arity));
      PutU64(&out, record.dataset.size());
      out += record.dataset;
      break;
  }
  return out;
}

bool DecodeWalRecord(std::string_view payload, WalRecord* out,
                     std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Reader r{payload};
  const std::uint8_t kind = r.U8();
  out->request_id = r.U64();
  if (!r.ok) return fail("record too short for header");
  switch (static_cast<WalRecord::Kind>(kind)) {
    case WalRecord::Kind::kSetRelation:
    case WalRecord::Kind::kAddTuples: {
      out->kind = static_cast<WalRecord::Kind>(kind);
      const std::uint32_t name_len = r.U32();
      if (!r.ok || name_len > kMaxRelationName) {
        return fail("bad relation name length");
      }
      out->relation = std::string(r.Bytes(name_len));
      out->tuples.clear();
      if (!ReadTuples(&r, &out->arity, &out->tuples)) {
        return fail("bad tuple block");
      }
      for (const Tuple& t : out->tuples) {
        if (static_cast<int>(t.size()) != out->arity) {
          return fail("tuple arity mismatch");
        }
      }
      break;
    }
    case WalRecord::Kind::kDataset: {
      out->kind = WalRecord::Kind::kDataset;
      out->continue_on_error = r.U8() != 0;
      const std::uint64_t len = r.U64();
      if (!r.ok || payload.size() - r.pos < len) {
        return fail("bad dataset length");
      }
      out->dataset = std::string(r.Bytes(static_cast<std::size_t>(len)));
      break;
    }
    case WalRecord::Kind::kDedup: {
      out->kind = WalRecord::Kind::kDedup;
      const std::uint64_t count = r.U64();
      if (!r.ok || (payload.size() - r.pos) / 8 < count) {
        return fail("bad dedup count");
      }
      out->dedup_ids.clear();
      out->dedup_ids.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        out->dedup_ids.push_back(r.U64());
      }
      break;
    }
    case WalRecord::Kind::kViewDef: {
      out->kind = WalRecord::Kind::kViewDef;
      const std::uint32_t name_len = r.U32();
      if (!r.ok || name_len > kMaxRelationName) {
        return fail("bad view name length");
      }
      out->relation = std::string(r.Bytes(name_len));
      out->arity = r.U8();
      const std::uint64_t len = r.U64();
      if (!r.ok || payload.size() - r.pos < len) {
        return fail("bad view definition length");
      }
      out->dataset = std::string(r.Bytes(static_cast<std::size_t>(len)));
      break;
    }
    default:
      return fail("unknown record kind");
  }
  if (r.pos != payload.size()) return fail("trailing bytes in record");
  return true;
}

Wal::~Wal() { Close(); }

bool Wal::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

bool Wal::Open(const WalOptions& options, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    *error = "wal already open";
    return false;
  }
  if (options.dir.empty()) {
    *error = "wal directory not set";
    return false;
  }
  if (util::FaultPoint("wal.open")) {
    *error = "injected fault: wal.open";
    return false;
  }
  if (::mkdir(options.dir.c_str(), 0777) != 0 && errno != EEXIST) {
    *error = Errno("mkdir " + options.dir);
    return false;
  }
  const std::string path = options.dir + "/" + kLogFile;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    *error = Errno("open " + path);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    *error = Errno("fstat " + path);
    ::close(fd);
    return false;
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  std::uint64_t generation = 0;
  if (size < kHeaderBytes) {
    // Fresh log, or a header torn by a crash during creation: start over
    // one generation past the snapshot (if any), so recovery replays what
    // lands here on top of it.
    generation = SnapshotGeneration(options.dir) + 1;
    if (::ftruncate(fd, 0) != 0 ||
        !WriteAll(fd, FileHeader(kLogMagic, generation), error)) {
      if (error->empty()) *error = Errno("init " + path);
      ::close(fd);
      return false;
    }
    size = kHeaderBytes;
  } else {
    // Replay() already validated the header; revalidate cheaply in case
    // Open is used standalone against a foreign file.
    std::string head;
    bool exists = false;
    if (!ReadPrefix(path, kHeaderBytes, &head, &exists, error)) {
      ::close(fd);
      return false;
    }
    if (!ParseHeader(head, kLogMagic, &generation)) {
      *error = path + ": bad magic (not a qc wal)";
      ::close(fd);
      return false;
    }
    // A log the snapshot already covers would silently drop every append
    // at the next recovery; Replay discards such a log, so hitting one
    // here means recovery was skipped.
    if (SnapshotGeneration(options.dir) >= generation) {
      *error = path + ": generation " + std::to_string(generation) +
               " is already covered by the snapshot; run recovery first";
      ::close(fd);
      return false;
    }
  }
  options_ = options;
  fd_ = fd;
  generation_ = generation;
  log_bytes_ = size;
  unsynced_bytes_ = 0;
  stats_.log_bytes = log_bytes_;
  return true;
}

void Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (options_.fsync != FsyncPolicy::kOff && unsynced_bytes_ > 0) {
      ::fdatasync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

bool Wal::SyncLocked(std::string* error) {
  if (util::FaultPoint("wal.fsync")) {
    if (error != nullptr) *error = "injected fault: wal.fsync";
    return false;
  }
  if (::fdatasync(fd_) != 0) {
    if (error != nullptr) *error = Errno("fdatasync wal.log");
    return false;
  }
  ++stats_.syncs;
  unsynced_bytes_ = 0;
  return true;
}

bool Wal::Append(const WalRecord& record, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    *error = "wal not open";
    return false;
  }
  const std::string payload = EncodeWalRecord(record);
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;

  if (util::FaultPoint("wal.write")) {
    ++stats_.append_failures;
    *error = "injected fault: wal.write";
    return false;
  }
  if (!WriteAll(fd_, frame, error)) {
    // A partial frame may now sit on disk; the CRC walk at next recovery
    // truncates it. Nothing was acknowledged, so no data is lost.
    ++stats_.append_failures;
    return false;
  }
  log_bytes_ += frame.size();
  unsynced_bytes_ += frame.size();
  stats_.log_bytes = log_bytes_;
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();

  const bool need_sync =
      options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kBatch &&
       unsynced_bytes_ >= options_.batch_bytes);
  if (need_sync && !SyncLocked(error)) {
    ++stats_.append_failures;
    return false;
  }
  return true;
}

bool Wal::Sync(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal not open";
    return false;
  }
  if (options_.fsync == FsyncPolicy::kOff || unsynced_bytes_ == 0) {
    return true;
  }
  return SyncLocked(error);
}

bool Wal::Compact(const Database& db,
                  const std::vector<std::uint64_t>& request_ids,
                  std::string* error) {
  return Compact(db, request_ids, {}, error);
}

bool Wal::Compact(const Database& db,
                  const std::vector<std::uint64_t>& request_ids,
                  const std::vector<WalRecord>& extra_records,
                  std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    *error = "wal not open";
    return false;
  }
  if (util::FaultPoint("wal.compact")) {
    *error = "injected fault: wal.compact";
    return false;
  }

  // Serialize every relation (RelationNames is sorted — deterministic
  // snapshot bytes for identical databases) plus the dedup window. The
  // snapshot carries the current log generation: it supersedes every
  // record logged at or before it.
  std::string snap = FileHeader(kSnapMagic, generation_);
  for (const std::string& name : db.RelationNames()) {
    WalRecord record;
    record.kind = WalRecord::Kind::kSetRelation;
    record.relation = name;
    record.arity = db.Arity(name);
    const FlatRelation& flat = db.Flat(name);
    record.tuples.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      const Value* row = flat.Row(i);
      record.tuples.emplace_back(row, row + record.arity);
    }
    const std::string payload = EncodeWalRecord(record);
    PutU32(&snap, static_cast<std::uint32_t>(payload.size()));
    PutU32(&snap, Crc32(payload));
    snap += payload;
  }
  {
    WalRecord dedup;
    dedup.kind = WalRecord::Kind::kDedup;
    dedup.dedup_ids = request_ids;
    const std::string payload = EncodeWalRecord(dedup);
    PutU32(&snap, static_cast<std::uint32_t>(payload.size()));
    PutU32(&snap, Crc32(payload));
    snap += payload;
  }
  for (const WalRecord& record : extra_records) {
    const std::string payload = EncodeWalRecord(record);
    PutU32(&snap, static_cast<std::uint32_t>(payload.size()));
    PutU32(&snap, Crc32(payload));
    snap += payload;
  }

  const std::string tmp_path = options_.dir + "/" + kSnapshotTmp;
  const std::string snap_path = options_.dir + "/" + kSnapshotFile;
  int fd = ::open(tmp_path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = Errno("open " + tmp_path);
    return false;
  }
  if (!WriteAll(fd, snap, error)) {
    ::close(fd);
    return false;
  }
  if (::fdatasync(fd) != 0) {
    *error = Errno("fdatasync " + tmp_path);
    ::close(fd);
    return false;
  }
  ::close(fd);
  // fsync-then-rename: snapshot.dat is either the complete old snapshot
  // or the complete new one, never a torn hybrid.
  if (::rename(tmp_path.c_str(), snap_path.c_str()) != 0) {
    *error = Errno("rename " + tmp_path);
    return false;
  }
  if (!SyncDir(options_.dir, error)) return false;

  // The snapshot is durable; rotate to a fresh, higher-generation log via
  // the same tmp + rename dance. Recovery discards any wal.log whose
  // generation the snapshot covers, so a crash anywhere in this window
  // cannot replay the old records on top of the snapshot that already
  // contains them.
  const std::string log_tmp = options_.dir + "/" + kLogTmp;
  const std::string log_path = options_.dir + "/" + kLogFile;
  std::string rotate_error;
  int log_fd = ::open(log_tmp.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  bool rotated = log_fd >= 0;
  if (!rotated) rotate_error = Errno("open " + log_tmp);
  if (rotated &&
      !WriteAll(log_fd, FileHeader(kLogMagic, generation_ + 1),
                &rotate_error)) {
    rotated = false;
  }
  if (rotated && ::fdatasync(log_fd) != 0) {
    rotate_error = Errno("fdatasync " + log_tmp);
    rotated = false;
  }
  if (rotated && ::rename(log_tmp.c_str(), log_path.c_str()) != 0) {
    rotate_error = Errno("rename " + log_tmp);
    rotated = false;
  }
  if (rotated && !SyncDir(options_.dir, &rotate_error)) rotated = false;
  if (!rotated) {
    // The snapshot now supersedes the open log, and no fresh log exists:
    // further appends would land in a covered generation and be dropped
    // by the next recovery. Close instead — mutations fail retryably
    // until the server reopens through recovery.
    if (log_fd >= 0) ::close(log_fd);
    ::close(fd_);
    fd_ = -1;
    *error = "wal rotation failed after snapshot: " + rotate_error;
    return false;
  }
  ::close(fd_);
  fd_ = log_fd;
  ++generation_;
  log_bytes_ = kHeaderBytes;
  unsynced_bytes_ = 0;
  stats_.log_bytes = log_bytes_;
  ++stats_.compactions;
  return true;
}

std::uint64_t Wal::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0 ? log_bytes_ : 0;
}

std::uint64_t Wal::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0 ? generation_ : 0;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

WalRecovery Wal::Replay(
    const WalOptions& options,
    const std::function<MutationResult(const WalRecord&)>& apply) {
  WalRecovery out;
  auto fail = [&out](std::string message) -> WalRecovery& {
    out.ok = false;
    out.error = std::move(message);
    return out;
  };

  std::unordered_set<std::uint64_t> seen_ids;
  auto handle = [&](const WalRecord& record, std::string* error,
                    std::uint64_t* counter) {
    if (record.kind == WalRecord::Kind::kDedup) {
      for (std::uint64_t dedup_id : record.dedup_ids) {
        if (dedup_id != 0 && seen_ids.insert(dedup_id).second) {
          out.request_ids.push_back(dedup_id);
        }
      }
      return true;
    }
    if (record.request_id != 0 && seen_ids.count(record.request_id) != 0) {
      // The same idempotency id logged twice: a failed fsync persists a
      // record whose mutation was rejected, and the client's acknowledged
      // retry appends a second copy. Applying both would double-apply an
      // acknowledged mutation.
      ++out.duplicate_records_skipped;
      return true;
    }
    MutationResult r = apply(record);
    if (!r) {
      if (error != nullptr) {
        *error = "durable record failed to re-apply: " + r.message;
      }
      return false;
    }
    if (record.request_id != 0) {
      seen_ids.insert(record.request_id);
      out.request_ids.push_back(record.request_id);
    }
    ++*counter;
    return true;
  };

  // A crash inside Compact can leave either pre-rename scratch file
  // behind; neither is ever authoritative.
  ::unlink((options.dir + "/" + kSnapshotTmp).c_str());
  ::unlink((options.dir + "/" + kLogTmp).c_str());

  // 1. Snapshot: complete by construction (fsync-then-rename), so any
  // damage here is a hard error — never skipped.
  const std::string snap_path = options.dir + "/" + kSnapshotFile;
  std::string snap;
  bool snap_exists = false;
  std::uint64_t snap_generation = 0;
  std::string io_error;
  if (!ReadWholeFile(snap_path, &snap, &snap_exists, &io_error)) {
    return fail(io_error);
  }
  if (snap_exists) {
    if (!ParseHeader(snap, kSnapMagic, &snap_generation)) {
      return fail(snap_path + ": bad snapshot header");
    }
    bool hard_error = false;
    std::string walk_error;
    const std::uint64_t end = WalkRecords(
        snap, kHeaderBytes,
        [&](const WalRecord& record, std::string* error) {
          return handle(record, error, &out.snapshot_records);
        },
        &hard_error, &walk_error);
    if (hard_error) return fail(snap_path + ": " + walk_error);
    if (end != snap.size()) {
      return fail(snap_path + ": truncated snapshot record at byte " +
                  std::to_string(end));
    }
  }

  // 2. Log: replay to the last checksummed record, then truncate the torn
  // tail (a crash mid-append legitimately leaves one).
  const std::string log_path = options.dir + "/" + kLogFile;
  std::string log;
  bool log_exists = false;
  if (!ReadWholeFile(log_path, &log, &log_exists, &io_error)) {
    return fail(io_error);
  }
  if (log_exists) {
    std::uint64_t log_generation = 0;
    std::uint64_t valid_end = 0;
    if (log.size() < kHeaderBytes) {
      // Torn header: the file never held a durable record.
      valid_end = 0;
      out.torn_bytes_truncated += log.size();
    } else if (!ParseHeader(log, kLogMagic, &log_generation)) {
      return fail(log_path + ": bad magic (not a qc wal)");
    } else if (snap_exists && log_generation <= snap_generation) {
      // A crash between Compact's snapshot rename and its log rotation:
      // every record here is already inside the snapshot (including its
      // request_ids, via the kDedup record). Replaying would duplicate
      // them all, so discard the file; Open then starts a fresh log one
      // generation past the snapshot.
      out.stale_log_bytes_skipped = log.size();
      if (::unlink(log_path.c_str()) != 0) {
        return fail(Errno("unlink stale " + log_path));
      }
      SyncDir(options.dir, nullptr);  // Best effort; stale is re-skipped.
      out.ok = true;
      return out;
    } else {
      bool hard_error = false;
      std::string walk_error;
      valid_end = WalkRecords(
          log, kHeaderBytes,
          [&](const WalRecord& record, std::string* error) {
            return handle(record, error, &out.log_records);
          },
          &hard_error, &walk_error);
      if (hard_error) return fail(log_path + ": " + walk_error);
      out.torn_bytes_truncated += log.size() - valid_end;
    }
    if (valid_end != log.size()) {
      int fd = ::open(log_path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) return fail(Errno("open " + log_path));
      const bool truncated =
          ::ftruncate(fd, static_cast<off_t>(valid_end)) == 0 &&
          ::fdatasync(fd) == 0;
      ::close(fd);
      if (!truncated) return fail(Errno("truncate " + log_path));
    }
  }

  out.ok = true;
  return out;
}

}  // namespace qc::db
