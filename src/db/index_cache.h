#ifndef QC_DB_INDEX_CACHE_H_
#define QC_DB_INDEX_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "db/trie_index.h"
#include "util/counters.h"
#include "util/metrics.h"

namespace qc::db {

/// Point-in-time view of one IndexCache's counters and occupancy.
struct IndexCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries built but never inserted because they alone exceed the cap
  /// (the caller still gets a working index — it just isn't shared).
  std::uint64_t rejected = 0;
  std::size_t bytes = 0;    ///< Current accounted footprint.
  std::size_t entries = 0;  ///< Current resident entry count.
  std::size_t capacity_bytes = 0;
};

/// Shared, thread-safe cache of trie indexes keyed by
/// (relation name, relation version, projection signature).
///
/// Every Database mutation stamps the relation with a process-unique version
/// (Database::RelationVersion), so a key can never alias stale data: a
/// mutated relation simply misses under its new version and the old entries
/// age out through LRU eviction. The signature
/// (db::AtomProjectionSignature) canonicalizes which columns the index
/// covers, in which order, and under which repeated-attribute equality
/// filter — equal keys are guaranteed byte-identical indexes, which is what
/// lets self-join atoms and repeated queries share one build.
///
/// Memory accounting is byte-accurate against the configured cap: each
/// entry is charged TrieIndex::MemoryBytes() (capacity-accurate heap
/// footprint) plus the entry and key bookkeeping, and insertion evicts
/// least-recently-used entries until the new total fits. An entry larger
/// than the whole cap is never inserted — the caller keeps a private copy
/// and the workload degrades to cold builds (counted under `rejected`)
/// instead of wrong answers or a blown cap. Entries are handed out as
/// shared_ptr, so eviction never invalidates an evaluation that is still
/// reading the index.
///
/// Threading contract: all members are thread-safe behind one mutex.
/// Builders run *outside* the lock, so concurrent misses on one key may
/// build twice; the first insertion wins and later builders adopt it —
/// duplicated work, never duplicated memory or inconsistent state.
///
/// Observability: every lookup records an `index_cache.hit` or
/// `index_cache.miss` trace span (count markers in the PR-4 span tree), and
/// ExportCounters/ExportMetrics publish the "index_cache.*" counter/gauge
/// split into the unified Counters / MetricsRegistry surfaces.
class IndexCache {
 public:
  /// One immutable cached index over a sorted, deduplicated projection.
  struct Entry {
    TrieIndex trie;
    bool no_rows = false;   ///< True when the projection had zero rows.
    std::size_t bytes = 0;  ///< Accounted footprint; filled on insert.
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit IndexCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the cached entry for (relation, version, signature), invoking
  /// `build` on a miss. Never returns null: on a miss the freshly built
  /// entry is returned even when it cannot be inserted under the cap.
  EntryPtr GetOrBuild(const std::string& relation, std::uint64_t version,
                      const std::string& signature,
                      const std::function<Entry()>& build);

  IndexCacheStats stats() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  /// Drops every entry (counters are kept; in-flight EntryPtrs stay valid).
  void Clear();

  /// Publishes "index_cache.{hits,misses,evictions,rejected}" as counters
  /// and "index_cache.{bytes,entries,capacity_bytes}" as gauges.
  void ExportCounters(util::Counters* sink) const;
  void ExportMetrics(util::MetricsRegistry* registry) const;

 private:
  struct Slot {
    EntryPtr entry;
    std::list<std::string>::iterator lru_it;  ///< Position in lru_.
  };

  /// Evicts LRU entries until `incoming` more bytes fit under the cap.
  /// Caller holds mu_.
  void EvictToFitLocked(std::size_t incoming);

  mutable std::mutex mu_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;
  /// Most-recently-used at the front; values are the map keys.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Slot> map_;
};

}  // namespace qc::db

#endif  // QC_DB_INDEX_CACHE_H_
