#include "db/parser.h"

#include <cctype>
#include <charconv>

namespace qc::db {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// 1-based line/column of byte offset `pos` in `text`.
ParseError ErrorAt(const std::string& text, std::size_t pos,
                   std::string message) {
  int line = 1, column = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return ParseError{line, column, std::move(message)};
}

}  // namespace

std::string ParseError::ToString() const {
  return "line " + std::to_string(line) + ", column " + std::to_string(column) +
         ": " + message;
}

ParseResult<JoinQuery> ParseJoinQuery(const std::string& text) {
  using Result = ParseResult<JoinQuery>;
  JoinQuery query;
  std::size_t i = 0;
  auto skip_separators = [&] {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ',')) {
      ++i;
    }
  };
  auto parse_ident = [&]() -> std::optional<std::string> {
    if (i >= text.size() || !IsIdentStart(text[i])) return std::nullopt;
    std::size_t start = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    return text.substr(start, i - start);
  };

  skip_separators();
  while (i < text.size()) {
    auto relation = parse_ident();
    if (!relation) {
      return Result::Fail(ErrorAt(text, i, "expected relation name"));
    }
    skip_separators();
    if (i >= text.size() || text[i] != '(') {
      return Result::Fail(
          ErrorAt(text, i, "expected '(' after relation " + *relation));
    }
    ++i;
    std::vector<std::string> attributes;
    while (true) {
      skip_separators();
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      auto attr = parse_ident();
      if (!attr) {
        return Result::Fail(
            ErrorAt(text, i, "expected attribute name in " + *relation));
      }
      attributes.push_back(*attr);
    }
    if (attributes.empty()) {
      return Result::Fail(
          ErrorAt(text, i, "relation " + *relation + " has no attributes"));
    }
    query.Add(*relation, std::move(attributes));
    skip_separators();
  }
  if (query.atoms.empty()) {
    return Result::Fail(ErrorAt(text, 0, "no atoms in query"));
  }
  return Result::Ok(std::move(query));
}

ParseResult<std::vector<Tuple>> ParseTuples(const std::string& text) {
  using Result = ParseResult<std::vector<Tuple>>;
  std::vector<Tuple> tuples;
  int line_no = 0;
  std::size_t arity = 0;
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    ++line_no;
    std::size_t body_end = line_end;
    std::size_t hash = text.find('#', line_start);
    if (hash != std::string::npos && hash < body_end) body_end = hash;

    Tuple tuple;
    std::size_t i = line_start;
    while (i < body_end) {
      if (std::isspace(static_cast<unsigned char>(text[i])) ||
          text[i] == ',') {
        ++i;
        continue;
      }
      std::size_t start = i;
      while (i < body_end &&
             !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != ',') {
        ++i;
      }
      Value v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data() + start, text.data() + i, v);
      if (ec != std::errc() || ptr != text.data() + i) {
        return Result::Fail(ErrorAt(
            text, start,
            "bad value '" + text.substr(start, i - start) + "'"));
      }
      tuple.push_back(v);
    }
    if (!tuple.empty()) {
      if (arity == 0) {
        arity = tuple.size();
      } else if (tuple.size() != arity) {
        return Result::Fail(
            ErrorAt(text, line_start,
                    "arity mismatch: expected " + std::to_string(arity) +
                        " values, got " + std::to_string(tuple.size())));
      }
      tuples.push_back(std::move(tuple));
    }
    if (line_end == text.size()) break;
    line_start = line_end + 1;
  }
  return Result::Ok(std::move(tuples));
}

}  // namespace qc::db
