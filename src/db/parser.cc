#include "db/parser.h"

#include <cctype>
#include <sstream>

namespace qc::db {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::optional<JoinQuery> ParseJoinQuery(const std::string& text,
                                        std::string* error) {
  JoinQuery query;
  std::size_t i = 0;
  auto skip_separators = [&] {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ',')) {
      ++i;
    }
  };
  auto parse_ident = [&]() -> std::optional<std::string> {
    if (i >= text.size() || !IsIdentStart(text[i])) return std::nullopt;
    std::size_t start = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    return text.substr(start, i - start);
  };

  skip_separators();
  while (i < text.size()) {
    auto relation = parse_ident();
    if (!relation) {
      SetError(error, "expected relation name at position " +
                          std::to_string(i));
      return std::nullopt;
    }
    skip_separators();
    if (i >= text.size() || text[i] != '(') {
      SetError(error, "expected '(' after relation " + *relation);
      return std::nullopt;
    }
    ++i;
    std::vector<std::string> attributes;
    while (true) {
      skip_separators();
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      auto attr = parse_ident();
      if (!attr) {
        SetError(error, "expected attribute name in " + *relation +
                            " at position " + std::to_string(i));
        return std::nullopt;
      }
      attributes.push_back(*attr);
    }
    if (attributes.empty()) {
      SetError(error, "relation " + *relation + " has no attributes");
      return std::nullopt;
    }
    query.Add(*relation, std::move(attributes));
    skip_separators();
  }
  if (query.atoms.empty()) {
    SetError(error, "no atoms in query");
    return std::nullopt;
  }
  return query;
}

std::optional<std::vector<Tuple>> ParseTuples(const std::string& text,
                                              std::string* error) {
  std::vector<Tuple> tuples;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  std::size_t arity = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (auto& c : line) {
      if (c == ',') c = ' ';
    }
    std::istringstream ls(line);
    Tuple tuple;
    Value v;
    while (ls >> v) tuple.push_back(v);
    if (!ls.eof()) {
      SetError(error, "bad value on line " + std::to_string(line_no));
      return std::nullopt;
    }
    if (tuple.empty()) continue;
    if (arity == 0) {
      arity = tuple.size();
    } else if (tuple.size() != arity) {
      SetError(error, "arity mismatch on line " + std::to_string(line_no));
      return std::nullopt;
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

}  // namespace qc::db
