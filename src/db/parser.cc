#include "db/parser.h"

#include <cctype>
#include <charconv>

namespace qc::db {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

ParseError ErrorAt(const std::string& text, std::size_t pos,
                   std::string message) {
  return util::ErrorAtOffset(text, pos, std::move(message));
}

}  // namespace

ParseResult<JoinQuery> ParseJoinQuery(const std::string& text) {
  using Result = ParseResult<JoinQuery>;
  JoinQuery query;
  std::size_t i = 0;
  auto skip_separators = [&] {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ',')) {
      ++i;
    }
  };
  // Returns the identifier starting at i, or an empty optional when i does
  // not start one. Identifiers past kMaxIdentifierLength are scanned to the
  // end (so the error position is right) but reported, not materialized.
  std::size_t ident_start = 0;
  std::size_t ident_length = 0;
  auto parse_ident = [&]() -> std::optional<std::string> {
    if (i >= text.size() || !IsIdentStart(text[i])) return std::nullopt;
    std::size_t start = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    ident_start = start;
    ident_length = i - start;
    return text.substr(start, i - start);
  };

  skip_separators();
  while (i < text.size()) {
    auto relation = parse_ident();
    if (!relation) {
      return Result::Fail(ErrorAt(text, i, "expected relation name"));
    }
    if (ident_length > kMaxIdentifierLength) {
      return Result::Fail(ErrorAt(
          text, ident_start,
          "relation name too long: " + util::ClipForError(*relation)));
    }
    skip_separators();
    if (i >= text.size() || text[i] != '(') {
      return Result::Fail(ErrorAt(
          text, i, "expected '(' after relation " + util::ClipForError(*relation)));
    }
    ++i;
    std::vector<std::string> attributes;
    while (true) {
      skip_separators();
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      auto attr = parse_ident();
      if (!attr) {
        return Result::Fail(ErrorAt(
            text, i,
            "expected attribute name in " + util::ClipForError(*relation)));
      }
      if (ident_length > kMaxIdentifierLength) {
        return Result::Fail(ErrorAt(
            text, ident_start,
            "attribute name too long: " + util::ClipForError(*attr)));
      }
      if (attributes.size() >= kMaxAtomArity) {
        return Result::Fail(ErrorAt(
            text, ident_start,
            "atom " + util::ClipForError(*relation) + " exceeds max arity " +
                std::to_string(kMaxAtomArity)));
      }
      attributes.push_back(*attr);
    }
    if (attributes.empty()) {
      return Result::Fail(ErrorAt(
          text, i,
          "relation " + util::ClipForError(*relation) + " has no attributes"));
    }
    query.Add(*relation, std::move(attributes));
    skip_separators();
  }
  if (query.atoms.empty()) {
    return Result::Fail(ErrorAt(text, 0, "no atoms in query"));
  }
  return Result::Ok(std::move(query));
}

ParseResult<std::vector<Tuple>> ParseTuples(const std::string& text) {
  using Result = ParseResult<std::vector<Tuple>>;
  std::vector<Tuple> tuples;
  int line_no = 0;
  std::size_t arity = 0;
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    ++line_no;
    std::size_t body_end = line_end;
    std::size_t hash = text.find('#', line_start);
    if (hash != std::string::npos && hash < body_end) body_end = hash;

    Tuple tuple;
    std::size_t i = line_start;
    while (i < body_end) {
      if (std::isspace(static_cast<unsigned char>(text[i])) ||
          text[i] == ',') {
        ++i;
        continue;
      }
      std::size_t start = i;
      while (i < body_end &&
             !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != ',') {
        ++i;
      }
      Value v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data() + start, text.data() + i, v);
      if (ec != std::errc() || ptr != text.data() + i) {
        return Result::Fail(ErrorAt(
            text, start,
            "bad value '" +
                util::ClipForError(
                    std::string_view(text).substr(start, i - start)) +
                "'"));
      }
      if (tuple.size() >= kMaxTupleArity) {
        return Result::Fail(
            ErrorAt(text, start,
                    "tuple exceeds max arity " + std::to_string(kMaxTupleArity)));
      }
      tuple.push_back(v);
    }
    if (!tuple.empty()) {
      if (arity == 0) {
        arity = tuple.size();
      } else if (tuple.size() != arity) {
        return Result::Fail(
            ErrorAt(text, line_start,
                    "arity mismatch: expected " + std::to_string(arity) +
                        " values, got " + std::to_string(tuple.size())));
      }
      tuples.push_back(std::move(tuple));
    }
    if (line_end == text.size()) break;
    line_start = line_end + 1;
  }
  return Result::Ok(std::move(tuples));
}

}  // namespace qc::db
