#include "db/joins.h"

#include <algorithm>
#include <map>

namespace qc::db {

JoinResult MaterializeAtom(const Atom& atom, const Database& db) {
  JoinResult out;
  std::vector<int> keep_cols;
  for (std::size_t i = 0; i < atom.attributes.size(); ++i) {
    if (std::find(out.attributes.begin(), out.attributes.end(),
                  atom.attributes[i]) == out.attributes.end()) {
      out.attributes.push_back(atom.attributes[i]);
      keep_cols.push_back(static_cast<int>(i));
    }
  }
  for (const auto& t : db.Tuples(atom.relation)) {
    // Repeated attributes must agree.
    bool ok = true;
    for (std::size_t i = 0; i < atom.attributes.size() && ok; ++i) {
      for (std::size_t j = i + 1; j < atom.attributes.size() && ok; ++j) {
        if (atom.attributes[i] == atom.attributes[j] && t[i] != t[j]) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    Tuple projected;
    projected.reserve(keep_cols.size());
    for (int c : keep_cols) projected.push_back(t[c]);
    out.tuples.push_back(std::move(projected));
  }
  return out;
}

JoinResult HashJoin(const JoinResult& left, const JoinResult& right,
                    JoinStats* stats) {
  // Shared attributes and column maps.
  std::vector<int> left_shared, right_shared, right_extra;
  JoinResult out;
  out.attributes = left.attributes;
  for (std::size_t j = 0; j < right.attributes.size(); ++j) {
    auto it = std::find(left.attributes.begin(), left.attributes.end(),
                        right.attributes[j]);
    if (it != left.attributes.end()) {
      left_shared.push_back(static_cast<int>(it - left.attributes.begin()));
      right_shared.push_back(static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
      out.attributes.push_back(right.attributes[j]);
    }
  }
  // Build on the smaller side conceptually; here: build on right.
  std::map<Tuple, std::vector<const Tuple*>> index;
  for (const auto& t : right.tuples) {
    Tuple key;
    key.reserve(right_shared.size());
    for (int c : right_shared) key.push_back(t[c]);
    index[std::move(key)].push_back(&t);
  }
  for (const auto& t : left.tuples) {
    Tuple key;
    key.reserve(left_shared.size());
    for (int c : left_shared) key.push_back(t[c]);
    if (stats != nullptr) ++stats->probes;
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* rt : it->second) {
      Tuple combined = t;
      for (int c : right_extra) combined.push_back((*rt)[c]);
      out.tuples.push_back(std::move(combined));
    }
  }
  if (stats != nullptr) {
    stats->intermediate_tuples += out.tuples.size();
    stats->max_intermediate =
        std::max<std::uint64_t>(stats->max_intermediate, out.tuples.size());
  }
  return out;
}

JoinResult EvaluateBinaryJoinPlan(const JoinQuery& query, const Database& db,
                                  const std::vector<int>& atom_order,
                                  JoinStats* stats) {
  JoinResult acc;
  bool first = true;
  for (int idx : atom_order) {
    JoinResult next = MaterializeAtom(query.atoms[idx], db);
    if (first) {
      acc = std::move(next);
      first = false;
      if (stats != nullptr) {
        stats->intermediate_tuples += acc.tuples.size();
        stats->max_intermediate = std::max<std::uint64_t>(
            stats->max_intermediate, acc.tuples.size());
      }
    } else {
      acc = HashJoin(acc, next, stats);
    }
  }
  return acc;
}

std::vector<int> GreedyJoinOrder(const JoinQuery& query, const Database& db) {
  const int m = static_cast<int>(query.atoms.size());
  std::vector<bool> used(m, false);
  std::vector<int> order;
  std::vector<std::string> bound;  // Attributes bound so far.
  // Start with the smallest relation.
  int first = -1;
  for (int i = 0; i < m; ++i) {
    if (first < 0 || db.Tuples(query.atoms[i].relation).size() <
                         db.Tuples(query.atoms[first].relation).size()) {
      first = i;
    }
  }
  auto bind = [&](int i) {
    used[i] = true;
    order.push_back(i);
    for (const auto& a : query.atoms[i].attributes) {
      if (std::find(bound.begin(), bound.end(), a) == bound.end()) {
        bound.push_back(a);
      }
    }
  };
  if (first >= 0) bind(first);
  while (static_cast<int>(order.size()) < m) {
    int best = -1;
    bool best_connected = false;
    for (int i = 0; i < m; ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const auto& a : query.atoms[i].attributes) {
        if (std::find(bound.begin(), bound.end(), a) != bound.end()) {
          connected = true;
          break;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           db.Tuples(query.atoms[i].relation).size() <
               db.Tuples(query.atoms[best].relation).size())) {
        best = i;
        best_connected = connected;
      }
    }
    bind(best);
  }
  return order;
}

JoinResult EvaluateGreedyBinaryJoin(const JoinQuery& query, const Database& db,
                                    JoinStats* stats) {
  return EvaluateBinaryJoinPlan(query, db, GreedyJoinOrder(query, db), stats);
}

}  // namespace qc::db
