#include "db/joins.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace qc::db {

namespace {

/// Shared prep for atom materialization: distinct attributes in
/// first-occurrence order, the source column of each, and the repeated
/// columns that must agree with their first occurrence.
struct AtomColumns {
  std::vector<std::string> attributes;       ///< Deduplicated schema.
  std::vector<int> keep_cols;                ///< Source column per attribute.
  std::vector<std::pair<int, int>> eq_cols;  ///< (first, repeat) pairs.
};

AtomColumns AnalyzeAtomColumns(const Atom& atom) {
  AtomColumns cols;
  for (std::size_t i = 0; i < atom.attributes.size(); ++i) {
    auto it = std::find(cols.attributes.begin(), cols.attributes.end(),
                        atom.attributes[i]);
    if (it == cols.attributes.end()) {
      cols.attributes.push_back(atom.attributes[i]);
      cols.keep_cols.push_back(static_cast<int>(i));
    } else {
      cols.eq_cols.push_back(
          {cols.keep_cols[it - cols.attributes.begin()], static_cast<int>(i)});
    }
  }
  return cols;
}

bool RowPassesEquality(const Value* row, const AtomColumns& cols) {
  for (auto [first, repeat] : cols.eq_cols) {
    if (row[first] != row[repeat]) return false;
  }
  return true;
}

}  // namespace

JoinResult MaterializeAtom(const Atom& atom, const Database& db) {
  AtomColumns cols = AnalyzeAtomColumns(atom);
  JoinResult out;
  out.attributes = cols.attributes;
  const FlatRelation& rel = db.Flat(atom.relation);
  out.tuples.reserve(rel.size());
  for (std::size_t r = 0; r < rel.size(); ++r) {
    const Value* row = rel.Row(r);
    if (!RowPassesEquality(row, cols)) continue;
    Tuple projected;
    projected.reserve(cols.keep_cols.size());
    for (int c : cols.keep_cols) projected.push_back(row[c]);
    out.tuples.push_back(std::move(projected));
  }
  return out;
}

FlatRelation MaterializeAtomFlat(const Atom& atom, const Database& db,
                                 const std::map<std::string, int>& global_order,
                                 std::vector<int>* attr_positions) {
  AtomColumns cols = AnalyzeAtomColumns(atom);
  // Permute the kept columns into global attribute-order position.
  std::vector<int> perm(cols.attributes.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](int a, int b) {
    return global_order.at(cols.attributes[a]) <
           global_order.at(cols.attributes[b]);
  });
  attr_positions->clear();
  attr_positions->reserve(perm.size());
  std::vector<int> src_cols;
  src_cols.reserve(perm.size());
  for (int k : perm) {
    attr_positions->push_back(global_order.at(cols.attributes[k]));
    src_cols.push_back(cols.keep_cols[k]);
  }
  const FlatRelation& rel = db.Flat(atom.relation);
  FlatRelation out(static_cast<int>(src_cols.size()));
  out.Reserve(rel.size());
  Tuple buffer(src_cols.size());
  for (std::size_t r = 0; r < rel.size(); ++r) {
    const Value* row = rel.Row(r);
    if (!RowPassesEquality(row, cols)) continue;
    for (std::size_t c = 0; c < src_cols.size(); ++c) {
      buffer[c] = row[src_cols[c]];
    }
    out.PushRow(buffer.data());
  }
  return out;
}

std::vector<std::string> AtomAttributes(const Atom& atom) {
  return AnalyzeAtomColumns(atom).attributes;
}

std::string AtomProjectionSignature(const Atom& atom,
                                    const std::vector<std::string>& attrs) {
  AtomColumns cols = AnalyzeAtomColumns(atom);
  std::string sig = "e:";
  for (auto [first, repeat] : cols.eq_cols) {
    sig += std::to_string(first) + "=" + std::to_string(repeat) + ";";
  }
  sig += "c:";
  for (const auto& a : attrs) {
    auto it = std::find(cols.attributes.begin(), cols.attributes.end(), a);
    // Unknown attribute: encode an impossible column so the signature can
    // never alias a valid one (callers pass attributes of the atom).
    int col = it == cols.attributes.end()
                  ? -1
                  : cols.keep_cols[it - cols.attributes.begin()];
    sig += std::to_string(col) + ";";
  }
  return sig;
}

FlatRelation MaterializeSortedProjection(const Atom& atom, const Database& db,
                                         const std::vector<std::string>& attrs,
                                         util::Arena* scratch) {
  AtomColumns cols = AnalyzeAtomColumns(atom);
  std::vector<int> src_cols;
  src_cols.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto it = std::find(cols.attributes.begin(), cols.attributes.end(), a);
    if (it != cols.attributes.end()) {
      src_cols.push_back(cols.keep_cols[it - cols.attributes.begin()]);
    }
  }
  const FlatRelation& rel = db.Flat(atom.relation);
  FlatRelation out(static_cast<int>(src_cols.size()));
  out.Reserve(rel.size());
  Tuple buffer(src_cols.size());
  for (std::size_t r = 0; r < rel.size(); ++r) {
    const Value* row = rel.Row(r);
    if (!RowPassesEquality(row, cols)) continue;
    for (std::size_t c = 0; c < src_cols.size(); ++c) {
      buffer[c] = row[src_cols[c]];
    }
    out.PushRow(buffer.data());
  }
  out.SortLexAndDedup(FlatRelation::SortPolicy::kAuto, scratch);
  return out;
}

JoinResult HashJoin(const JoinResult& left, const JoinResult& right,
                    JoinStats* stats, util::Budget* budget) {
  // Shared attributes and column maps.
  std::vector<int> left_shared, right_shared, right_extra;
  JoinResult out;
  out.attributes = left.attributes;
  out.truncated = left.truncated || right.truncated;
  for (std::size_t j = 0; j < right.attributes.size(); ++j) {
    auto it = std::find(left.attributes.begin(), left.attributes.end(),
                        right.attributes[j]);
    if (it != left.attributes.end()) {
      left_shared.push_back(static_cast<int>(it - left.attributes.begin()));
      right_shared.push_back(static_cast<int>(j));
    } else {
      right_extra.push_back(static_cast<int>(j));
      out.attributes.push_back(right.attributes[j]);
    }
  }
  // Build on the smaller side conceptually; here: build on right.
  std::map<Tuple, std::vector<const Tuple*>> index;
  for (const auto& t : right.tuples) {
    Tuple key;
    key.reserve(right_shared.size());
    for (int c : right_shared) key.push_back(t[c]);
    index[std::move(key)].push_back(&t);
  }
  for (const auto& t : left.tuples) {
    if (budget != nullptr && budget->Poll()) {
      out.truncated = true;
      break;
    }
    Tuple key;
    key.reserve(left_shared.size());
    for (int c : left_shared) key.push_back(t[c]);
    if (stats != nullptr) ++stats->probes;
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* rt : it->second) {
      Tuple combined = t;
      for (int c : right_extra) combined.push_back((*rt)[c]);
      out.tuples.push_back(std::move(combined));
    }
  }
  if (stats != nullptr) {
    stats->intermediate_tuples += out.tuples.size();
    stats->max_intermediate =
        std::max<std::uint64_t>(stats->max_intermediate, out.tuples.size());
  }
  return out;
}

JoinResult EvaluateBinaryJoinPlan(const JoinQuery& query, const Database& db,
                                  const std::vector<int>& atom_order,
                                  JoinStats* stats) {
  JoinResult acc;
  bool first = true;
  for (int idx : atom_order) {
    JoinResult next = MaterializeAtom(query.atoms[idx], db);
    if (first) {
      acc = std::move(next);
      first = false;
      if (stats != nullptr) {
        stats->intermediate_tuples += acc.tuples.size();
        stats->max_intermediate = std::max<std::uint64_t>(
            stats->max_intermediate, acc.tuples.size());
      }
    } else {
      acc = HashJoin(acc, next, stats);
    }
  }
  return acc;
}

std::vector<int> GreedyJoinOrder(const JoinQuery& query, const Database& db) {
  const int m = static_cast<int>(query.atoms.size());
  std::vector<bool> used(m, false);
  std::vector<int> order;
  std::vector<std::string> bound;  // Attributes bound so far.
  // Start with the smallest relation.
  int first = -1;
  for (int i = 0; i < m; ++i) {
    if (first < 0 || db.NumTuples(query.atoms[i].relation) <
                         db.NumTuples(query.atoms[first].relation)) {
      first = i;
    }
  }
  auto bind = [&](int i) {
    used[i] = true;
    order.push_back(i);
    for (const auto& a : query.atoms[i].attributes) {
      if (std::find(bound.begin(), bound.end(), a) == bound.end()) {
        bound.push_back(a);
      }
    }
  };
  if (first >= 0) bind(first);
  while (static_cast<int>(order.size()) < m) {
    int best = -1;
    bool best_connected = false;
    for (int i = 0; i < m; ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const auto& a : query.atoms[i].attributes) {
        if (std::find(bound.begin(), bound.end(), a) != bound.end()) {
          connected = true;
          break;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           db.NumTuples(query.atoms[i].relation) <
               db.NumTuples(query.atoms[best].relation))) {
        best = i;
        best_connected = connected;
      }
    }
    bind(best);
  }
  return order;
}

JoinResult EvaluateGreedyBinaryJoin(const JoinQuery& query, const Database& db,
                                    JoinStats* stats) {
  return EvaluateBinaryJoinPlan(query, db, GreedyJoinOrder(query, db), stats);
}

}  // namespace qc::db
