#ifndef QC_DB_GENERIC_JOIN_H_
#define QC_DB_GENERIC_JOIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/context.h"
#include "db/database.h"
#include "db/index_cache.h"
#include "db/trie_index.h"
#include "util/budget.h"
#include "util/trace.h"

namespace qc::db {

/// Effort counters for the worst-case-optimal join. Also exported through
/// ExecutionContext::counters under "generic_join.nodes" /
/// "generic_join.probes" / "generic_join.gallops" (the unified
/// util::Counters surface); the per-instance trie size is exported once at
/// construction under "trie.nodes".
struct GenericJoinStats {
  std::uint64_t nodes = 0;    ///< Search-tree nodes (partial bindings).
  std::uint64_t probes = 0;   ///< Bounded binary searches, each counted once.
  std::uint64_t gallops = 0;  ///< Doubling steps of the galloping seeks.
  /// Blocked kernel calls of the two-holder SIMD intersection path
  /// (kernels::IntersectPairPositions); zero under QC_SIMD=scalar, where
  /// the historical leapfrog runs instead.
  std::uint64_t simd_blocks = 0;

  GenericJoinStats& operator+=(const GenericJoinStats& other) {
    nodes += other.nodes;
    probes += other.probes;
    gallops += other.gallops;
    simd_blocks += other.simd_blocks;
    return *this;
  }
};

/// Worst-case-optimal join in the Generic Join / Leapfrog Triejoin family
/// (Theorem 3.3, [54, 61]): attributes are bound one at a time in a global
/// order; at each step the candidate values are the intersection of the
/// matching trie levels of every relation containing the attribute.
///
/// Each atom is materialized into flat columnar storage (FlatRelation),
/// sorted once, and indexed by a TrieIndex whose level l holds the distinct
/// prefixes of length l+1 as contiguous (value, child-range) spans. The
/// search descends the tries: binding attribute d moves every holder atom
/// from its matched node to that node's child span — a pointer bump — and
/// the per-level intersection leapfrogs the holder spans with galloping
/// (doubling probe + bounded std::lower_bound). No tuple rows are ever
/// re-scanned or re-binary-searched during the descent. Runs in
/// O~(N^{rho*}) total time.
///
/// With `ctx.threads > 1` (or QC_THREADS set), Evaluate/Count/IsEmpty
/// partition the trie level-0 candidate values into contiguous chunks
/// executed on the shared ThreadPool with per-chunk buffers and stats,
/// merged in candidate order — the answer (and, for full traversals, the
/// stats) are bit-identical to the serial run at any thread count.
/// Enumerate always streams serially: its visitor contract (in-order
/// delivery, early stop) is order-sensitive.
///
/// The join observes the budget resolved from `ctx` (deadline, row limit,
/// cancellation): the search polls it once per node and Evaluate charges one
/// output row per materialized tuple. After any entry point, status()
/// reports how the run ended. Partial-result semantics on a trip:
/// Evaluate returns the rows materialized so far with `truncated = true`
/// (a subset of the true answer, at most `max_output_rows` rows when that
/// limit tripped); Count returns the count so far; IsEmpty's "empty" verdict
/// is only trustworthy when status() == kCompleted ("non-empty" is always
/// real). When the budget never trips, results are untouched.
///
/// When `ctx.index_cache` is set, construction looks each atom's trie up by
/// (relation name, relation version, projection signature) and only builds
/// on a miss — a warm cache skips materialize+sort+build entirely, and the
/// per-build "generic_join.build_trie" span is absent on hits. Answers and
/// stats are bit-identical with or without the cache at any thread count.
class GenericJoin {
 public:
  /// Prepares sorted tries for `query` over `db`. If `attribute_order` is
  /// empty, the first-appearance order is used.
  GenericJoin(const JoinQuery& query, const Database& db,
              std::vector<std::string> attribute_order = {},
              const ExecutionContext& ctx = ExecutionContext());

  /// Convenience: default attribute order with an execution context.
  GenericJoin(const JoinQuery& query, const Database& db,
              const ExecutionContext& ctx)
      : GenericJoin(query, db, {}, ctx) {}

  /// Materializes the full answer Q(D).
  JoinResult Evaluate();

  /// Decides emptiness (Boolean Join Query) with early exit.
  bool IsEmpty();

  /// |Q(D)| without materializing.
  std::uint64_t Count();

  /// Streams each answer tuple; return false from the visitor to stop.
  void Enumerate(const std::function<bool(const Tuple&)>& visitor);

  const GenericJoinStats& stats() const { return stats_; }
  /// How the most recent Evaluate/Count/IsEmpty/Enumerate ended.
  util::RunStatus status() const { return run_status_; }
  const std::vector<std::string>& attribute_order() const {
    return attribute_order_;
  }
  /// Total nodes across all atom tries (also exported as "trie.nodes").
  std::uint64_t trie_nodes() const { return trie_nodes_; }

 private:
  /// One atom's index. The trie lives behind an IndexCache entry pointer in
  /// both modes: with ctx.index_cache set the entry may be shared with other
  /// evaluations (warm hits skip the build entirely); without a cache the
  /// constructor builds a private entry. Either way the trie is immutable
  /// for this object's lifetime — eviction can't invalidate it.
  struct AtomIndex {
    std::vector<int> attr_positions;  ///< Global order index per trie level.
    IndexCache::EntryPtr entry;       ///< Never null after construction.

    const TrieIndex& trie() const { return entry->trie; }
    bool no_rows() const { return entry->no_rows; }
  };

  /// Live node-index span of one atom at its current trie level.
  struct Span {
    std::int32_t begin = 0;
    std::int32_t end = 0;
  };

  /// Per-depth reusable scratch (leapfrog cursors and saved spans), sized
  /// once per chunk/run so the descent allocates nothing per node.
  struct DepthScratch {
    std::vector<std::int32_t> cursors;  ///< One per holder of the attribute.
    std::vector<const Value*> values;   ///< Cached level value arrays.
    std::vector<std::int32_t> ends;     ///< Cached span ends.
    std::vector<Span> saved;            ///< Holder spans before the descent.
    /// Match-position buffers of the two-holder SIMD path (kPairChunk
    /// entries each, sized on first use).
    std::vector<std::int32_t> pos_a;
    std::vector<std::int32_t> pos_b;
  };

  /// The depth-0 candidate values with each holder's matched level-0 node,
  /// stored flat (stride = number of depth-0 holders) — the unit of
  /// parallel work.
  struct RootCandidates {
    std::vector<Value> values;
    std::vector<std::int32_t> positions;  ///< values.size() x holders(0).
  };

  /// Galloping lower bound for `target` in vals[pos..end), requiring
  /// vals[pos] < target. Counts one probe plus one gallop per doubling step.
  std::int32_t GallopSeek(const Value* vals, std::int32_t pos,
                          std::int32_t end, Value target,
                          GenericJoinStats* stats) const;

  /// Leapfrogs the holder spans of attribute `depth`; calls
  /// `emit(value, matched_positions)` for every value of the intersection
  /// in ascending order. `emit` returns false to stop early.
  template <class Emit>
  void LeapfrogIntersect(int depth, const std::vector<Span>& spans,
                         DepthScratch& scratch, GenericJoinStats* stats,
                         Emit&& emit) const;

  /// A-side chunk length of the two-holder blocked intersection: large
  /// enough to amortize the kernel call, small enough that an early-stopped
  /// emit wastes at most one chunk of kernel work.
  static constexpr std::int32_t kPairChunk = 2048;

  /// Two-holder intersection through the dispatched SIMD kernel: the A span
  /// is walked in kPairChunk blocks, the B span clipped per block by a
  /// galloping upper bound, and each block handed to
  /// kernels::IntersectPairPositions. Emits the identical (value, cursors)
  /// sequence as the historical leapfrog — the engine-level answers stay
  /// bit-identical across QC_SIMD levels. `scratch` cursors/values/ends must
  /// already be loaded for the two holders.
  template <class Emit>
  void PairIntersect(DepthScratch& scratch, GenericJoinStats* stats,
                     Emit&& emit) const;

  /// Moves holder `(atom, col)` from matched node `pos` to its child span.
  Span DescendSpan(int atom, int col, std::int32_t pos) const;

  void Search(int depth, std::vector<Span>& spans,
              std::vector<DepthScratch>& scratch, Tuple& binding,
              const std::function<bool(const Tuple&)>& visitor, bool* stop,
              GenericJoinStats* stats) const;

  /// Enumerates the depth-0 intersection (the serial prefix of every
  /// parallel run). Returns false when some relation is empty or the query
  /// binds no attributes.
  bool ComputeRootCandidates(RootCandidates* candidates,
                             GenericJoinStats* stats) const;

  /// Runs the search subtree of candidate `i`. `spans` must hold every
  /// atom's full level-0 span; holder spans are restored before returning.
  /// `binding` is caller-owned scratch of size attribute_order().size().
  void SearchCandidate(const RootCandidates& candidates, std::size_t i,
                       std::vector<Span>& spans,
                       std::vector<DepthScratch>& scratch, Tuple& binding,
                       const std::function<bool(const Tuple&)>& visitor,
                       bool* stop, GenericJoinStats* stats) const;

  std::vector<Span> FullSpans() const;
  std::vector<DepthScratch> MakeScratch() const;

  /// True when some atom's relation is empty (the join is empty).
  bool HasEmptyAtom() const;

  int ResolvedThreads() const;

  /// Publishes one run's effort into ctx_.counters, if any.
  void ExportStats(const GenericJoinStats& run) const;

  std::vector<std::string> attribute_order_;
  std::vector<AtomIndex> atoms_;
  /// Atoms containing each attribute, with the trie level (column index) of
  /// the attribute in that atom.
  std::vector<std::vector<std::pair<int, int>>> atoms_of_attr_;
  /// Interned trace span ids (see DESIGN.md §9): the root intersection and
  /// one "generic_join.search.level<d>" per variable level. The per-level
  /// span is opened once per parent search node, so its count equals the
  /// number of nodes expanded at the level above — deterministic at any
  /// thread count because the traversal itself is.
  std::uint32_t root_span_ = 0;
  std::vector<std::uint32_t> level_spans_;
  std::uint64_t trie_nodes_ = 0;
  GenericJoinStats stats_;
  ExecutionContext ctx_;
  /// Resolved once at construction and shared by every worker; never null.
  std::shared_ptr<util::Budget> budget_;
  util::RunStatus run_status_ = util::RunStatus::kCompleted;
};

}  // namespace qc::db

#endif  // QC_DB_GENERIC_JOIN_H_
