#ifndef QC_DB_GENERIC_JOIN_H_
#define QC_DB_GENERIC_JOIN_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "core/context.h"
#include "db/database.h"

namespace qc::db {

/// Effort counters for the worst-case-optimal join. Also exported through
/// ExecutionContext::counters under "generic_join.nodes" /
/// "generic_join.probes" (the unified util::Counters surface).
struct GenericJoinStats {
  std::uint64_t nodes = 0;          ///< Search-tree nodes (partial bindings).
  std::uint64_t probes = 0;         ///< Binary-search probes.

  GenericJoinStats& operator+=(const GenericJoinStats& other) {
    nodes += other.nodes;
    probes += other.probes;
    return *this;
  }
};

/// Worst-case-optimal join in the Generic Join / Leapfrog Triejoin family
/// (Theorem 3.3, [54, 61]): attributes are bound one at a time in a global
/// order; at each step the candidate values are the intersection of the
/// matching columns of every relation containing the attribute, computed by
/// scanning the smallest current range and galloping in the others. Runs in
/// O~(N^{rho*}) total time.
///
/// With `ctx.threads > 1` (or QC_THREADS set), Evaluate/Count/IsEmpty
/// partition the first attribute's candidate values into independent subtree
/// searches executed on the shared ThreadPool, with per-worker buffers and
/// stats merged in candidate order — the answer (and, for full traversals,
/// the stats) are bit-identical to the serial run. Enumerate always streams
/// serially: its visitor contract (in-order delivery, early stop) is
/// order-sensitive.
class GenericJoin {
 public:
  /// Prepares sorted tries for `query` over `db`. If `attribute_order` is
  /// empty, the first-appearance order is used.
  GenericJoin(const JoinQuery& query, const Database& db,
              std::vector<std::string> attribute_order = {},
              const ExecutionContext& ctx = ExecutionContext());

  /// Convenience: default attribute order with an execution context.
  GenericJoin(const JoinQuery& query, const Database& db,
              const ExecutionContext& ctx)
      : GenericJoin(query, db, {}, ctx) {}

  /// Materializes the full answer Q(D).
  JoinResult Evaluate();

  /// Decides emptiness (Boolean Join Query) with early exit.
  bool IsEmpty();

  /// |Q(D)| without materializing.
  std::uint64_t Count();

  /// Streams each answer tuple; return false from the visitor to stop.
  void Enumerate(const std::function<bool(const Tuple&)>& visitor);

  const GenericJoinStats& stats() const { return stats_; }
  const std::vector<std::string>& attribute_order() const {
    return attribute_order_;
  }

 private:
  struct AtomIndex {
    std::vector<int> attr_positions;  ///< Global order index per column.
    std::vector<Tuple> tuples;        ///< Columns in attr_positions order,
                                      ///< lexicographically sorted, distinct.
  };

  /// One candidate value of the first attribute with its sub-range in the
  /// depth-0 iterator atom — the unit of parallel work.
  struct RootCandidate {
    Value value;
    std::pair<int, int> it_range;
  };

  void Search(int depth, std::vector<std::pair<int, int>>& ranges,
              Tuple& binding,
              const std::function<bool(const Tuple&)>& visitor, bool* stop,
              GenericJoinStats* stats) const;

  /// Narrows `ranges[atom]` to the tuples whose `col` equals `v`.
  std::pair<int, int> Narrow(int atom, int col, Value v,
                             const std::vector<std::pair<int, int>>& ranges,
                             GenericJoinStats* stats) const;

  /// Enumerates the distinct depth-0 candidate values (the serial prefix of
  /// every parallel run). Returns false when some relation is empty.
  bool RootCandidates(std::vector<RootCandidate>* candidates, int* it_atom,
                      std::vector<std::pair<int, int>>* base_ranges,
                      GenericJoinStats* stats) const;

  /// Runs the search subtree of one root candidate; `visitor`/`stop` as in
  /// Search. Used by both the parallel partitions and the serial fallback.
  void SearchCandidate(const RootCandidate& candidate, int it_atom,
                       const std::vector<std::pair<int, int>>& base_ranges,
                       const std::function<bool(const Tuple&)>& visitor,
                       bool* stop, GenericJoinStats* stats) const;

  /// True when this instance should parallelize (resolved threads > 1 and
  /// more than one attribute to bind).
  int ResolvedThreads() const;

  /// Publishes one run's effort into ctx_.counters, if any.
  void ExportStats(const GenericJoinStats& run) const;

  std::vector<std::string> attribute_order_;
  std::vector<AtomIndex> atoms_;
  /// Atoms containing each attribute, with the column index of the
  /// attribute in that atom.
  std::vector<std::vector<std::pair<int, int>>> atoms_of_attr_;
  GenericJoinStats stats_;
  ExecutionContext ctx_;
};

}  // namespace qc::db

#endif  // QC_DB_GENERIC_JOIN_H_
