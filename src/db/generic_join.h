#ifndef QC_DB_GENERIC_JOIN_H_
#define QC_DB_GENERIC_JOIN_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "db/database.h"

namespace qc::db {

/// Effort counters for the worst-case-optimal join.
struct GenericJoinStats {
  std::uint64_t nodes = 0;          ///< Search-tree nodes (partial bindings).
  std::uint64_t probes = 0;         ///< Binary-search probes.
};

/// Worst-case-optimal join in the Generic Join / Leapfrog Triejoin family
/// (Theorem 3.3, [54, 61]): attributes are bound one at a time in a global
/// order; at each step the candidate values are the intersection of the
/// matching columns of every relation containing the attribute, computed by
/// scanning the smallest current range and galloping in the others. Runs in
/// O~(N^{rho*}) total time.
class GenericJoin {
 public:
  /// Prepares sorted tries for `query` over `db`. If `attribute_order` is
  /// empty, the first-appearance order is used.
  GenericJoin(const JoinQuery& query, const Database& db,
              std::vector<std::string> attribute_order = {});

  /// Materializes the full answer Q(D).
  JoinResult Evaluate();

  /// Decides emptiness (Boolean Join Query) with early exit.
  bool IsEmpty();

  /// |Q(D)| without materializing.
  std::uint64_t Count();

  /// Streams each answer tuple; return false from the visitor to stop.
  void Enumerate(const std::function<bool(const Tuple&)>& visitor);

  const GenericJoinStats& stats() const { return stats_; }
  const std::vector<std::string>& attribute_order() const {
    return attribute_order_;
  }

 private:
  struct AtomIndex {
    std::vector<int> attr_positions;  ///< Global order index per column.
    std::vector<Tuple> tuples;        ///< Columns in attr_positions order,
                                      ///< lexicographically sorted, distinct.
  };

  void Search(int depth, std::vector<std::pair<int, int>>& ranges,
              Tuple& binding,
              const std::function<bool(const Tuple&)>& visitor, bool* stop);

  std::vector<std::string> attribute_order_;
  std::vector<AtomIndex> atoms_;
  /// Atoms containing each attribute, with the column index of the
  /// attribute in that atom.
  std::vector<std::vector<std::pair<int, int>>> atoms_of_attr_;
  GenericJoinStats stats_;
};

}  // namespace qc::db

#endif  // QC_DB_GENERIC_JOIN_H_
