#include "core/autosolver.h"

#include "db/generic_join.h"
#include "db/yannakakis.h"
#include "graph/treewidth.h"
#include "sat/schaefer.h"
#include "util/trace.h"

namespace qc::core {

std::string ToString(SolveMethod method) {
  switch (method) {
    case SolveMethod::kSchaefer:
      return "schaefer";
    case SolveMethod::kTreewidthDp:
      return "treewidth-dp";
    case SolveMethod::kBacktracking:
      return "backtracking";
    case SolveMethod::kYannakakis:
      return "yannakakis";
    case SolveMethod::kGenericJoin:
      return "generic-join";
    case SolveMethod::kHybridJoin:
      return "hybrid-join";
  }
  return "?";
}

namespace {

/// Boolean-domain CSPs translate into the Schaefer machinery when arities
/// are small; returns false if not applicable.
bool TrySchaefer(const csp::CspInstance& csp, int max_arity,
                 AutoCspResult* result) {
  if (csp.domain_size != 2) return false;
  sat::BoolCsp bcsp;
  bcsp.num_vars = csp.num_vars;
  for (const auto& c : csp.constraints) {
    if (c.relation.arity() > max_arity) return false;
    sat::BoolRelation rel(c.relation.arity());
    for (const auto& t : c.relation.tuples()) {
      std::uint32_t mask = 0;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i]) mask |= 1u << i;
      }
      rel.Allow(mask);
    }
    bcsp.AddConstraint(c.scope, std::move(rel));
  }
  if (!bcsp.Classify().Tractable()) return false;
  sat::SchaeferSolveResult sr = sat::SolveSchaefer(bcsp);
  result->method = SolveMethod::kSchaefer;
  result->satisfiable = sr.satisfiable;
  result->assignment.clear();
  for (bool b : sr.assignment) result->assignment.push_back(b ? 1 : 0);
  return true;
}

}  // namespace

AutoCspResult SolveCspAuto(const csp::CspInstance& csp,
                           const ExecutionContext& ctx) {
  AutoCspResult result;
  std::shared_ptr<util::Budget> budget = ctx.ResolveBudget();
  // One span per routing decision: the report shows which engine the
  // autosolver picked and how long that route ran.
  // Schaefer is polynomial-time: no safe points needed inside.
  {
    static const std::uint32_t kSchaeferSpan =
        util::Trace::InternName("autosolver.schaefer");
    util::ScopedSpan span(kSchaeferSpan);
    if (TrySchaefer(csp, ctx.max_schaefer_arity, &result)) {
      ctx.Count("schaefer.dispatches", 1);
      return result;
    }
  }

  graph::Graph primal = csp.PrimalGraph();
  graph::TreewidthUpperBound ub = graph::HeuristicTreewidth(primal);
  if (ub.width <= ctx.treewidth_dp_max_width) {
    static const std::uint32_t kTreeDpSpan =
        util::Trace::InternName("autosolver.treedp");
    util::ScopedSpan span(kTreeDpSpan);
    csp::TreeDpResult dp =
        csp::SolveWithDecomposition(csp, ub.decomposition, budget.get());
    ctx.Count("treedp.table_entries", dp.table_entries);
    result.method = SolveMethod::kTreewidthDp;
    result.satisfiable = dp.satisfiable;
    result.assignment = std::move(dp.assignment);
    result.status = dp.status;
    return result;
  }

  static const std::uint32_t kBacktrackingSpan =
      util::Trace::InternName("autosolver.backtracking");
  util::ScopedSpan backtracking_span(kBacktrackingSpan);
  csp::BacktrackingSolver::Options options;
  options.budget = budget.get();
  csp::CspSolution sol = csp::BacktrackingSolver(options).Solve(csp);
  ctx.Count("backtracking.nodes", sol.stats.nodes);
  ctx.Count("backtracking.backtracks", sol.stats.backtracks);
  ctx.Count("backtracking.consistency_checks", sol.stats.consistency_checks);
  result.method = SolveMethod::kBacktracking;
  result.satisfiable = sol.found;
  result.assignment = std::move(sol.assignment);
  result.status = sol.status;
  return result;
}

AutoQueryResult EvaluateQueryAuto(const db::JoinQuery& query,
                                  const db::Database& db,
                                  const ExecutionContext& ctx) {
  AutoQueryResult result;
  std::shared_ptr<util::Budget> budget = ctx.ResolveBudget();
  {
    static const std::uint32_t kYannakakisSpan =
        util::Trace::InternName("autosolver.yannakakis");
    util::ScopedSpan span(kYannakakisSpan);
    auto yan = db::EvaluateYannakakis(query, db, nullptr, budget.get(),
                                      ctx.index_cache, ctx.arena);
    if (yan.has_value()) {
      ctx.Count("yannakakis.output_tuples", yan->tuples.size());
      result.method = SolveMethod::kYannakakis;
      result.result = std::move(*yan);
      result.status = result.result.truncated ? budget->status()
                                              : util::RunStatus::kCompleted;
      return result;
    }
  }
  // Cyclic query: the degree-split hybrid planner gets first refusal on
  // the small patterns it recognizes (triangle / 4-cycle / k-clique, k<=5).
  // kOn takes any recognized pattern; kAuto additionally requires the
  // partition to look profitable (a dense-enough heavy core). The planner's
  // decision record is kept either way so reports can show what it saw.
  if (ctx.hybrid_mode != HybridMode::kOff) {
    db::HybridPattern pattern = db::DetectHybridPattern(query);
    if (pattern != db::HybridPattern::kNone) {
      static const std::uint32_t kHybridSpan =
          util::Trace::InternName("autosolver.hybrid_join");
      util::ScopedSpan hybrid_span(kHybridSpan);
      ExecutionContext sub = ctx;
      sub.budget = budget;
      db::HybridJoin hybrid(query, db, sub, ctx.hybrid_delta);
      result.plan = hybrid.plan();
      if (hybrid.applicable() && (ctx.hybrid_mode == HybridMode::kOn ||
                                  hybrid.ProfitableUnderAuto())) {
        ctx.Count("hybrid.dispatches", 1);
        result.method = SolveMethod::kHybridJoin;
        result.result = hybrid.Evaluate();
        result.plan = hybrid.plan();
        result.status = hybrid.status();
        return result;
      }
    }
  }
  static const std::uint32_t kGenericJoinSpan =
      util::Trace::InternName("autosolver.generic_join");
  util::ScopedSpan generic_join_span(kGenericJoinSpan);
  result.method = SolveMethod::kGenericJoin;
  // GenericJoin inherits ctx: thread count for the parallel root partition
  // and the counters sink for "generic_join.*" (search effort) and
  // "trie.nodes" (index size, exported once at construction). Share the
  // budget already resolved here so both paths charge the same meters.
  ExecutionContext sub = ctx;
  sub.budget = budget;
  db::GenericJoin join(query, db, sub);
  result.result = join.Evaluate();
  result.status = join.status();
  return result;
}

}  // namespace qc::core
