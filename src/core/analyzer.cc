#include "core/analyzer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "graph/hypergraph.h"
#include "graph/hypertree.h"
#include "graph/treewidth.h"
#include "structures/structure.h"
#include "util/trace.h"

namespace qc::core {

namespace {

/// The canonical structure of Section 2.4 with a *grouped* vocabulary:
/// atoms/constraints carrying the same relation share a symbol. Per-edge
/// symbols would make every instance trivially its own core, which is wrong
/// for self-joins; the grouping keys are the relation name (queries) or the
/// extensional relation content (CSPs). Tuples keep scope order, so
/// orientation is preserved.
struct CanonicalStructure {
  int universe = 0;
  std::vector<int> symbol_of_tuple;
  std::vector<std::vector<int>> tuples;
  std::vector<int> symbol_arity;
};

/// Computes core size + core treewidth for the canonical structure.
void AnalyzeCore(const CanonicalStructure& cs, const ExecutionContext& ctx,
                 util::Budget* budget, Analysis* a) {
  if (cs.universe > ctx.core_computation_below) return;
  if (budget->Poll()) return;  // Budget tripped: skip the O(n^n) step.
  static const std::uint32_t kCoreSpan =
      util::Trace::InternName("analyzer.core");
  util::ScopedSpan core_span(kCoreSpan);
  std::vector<structures::RelSymbol> vocab;
  vocab.reserve(cs.symbol_arity.size());
  for (std::size_t s = 0; s < cs.symbol_arity.size(); ++s) {
    vocab.push_back(structures::RelSymbol{"S" + std::to_string(s),
                                          cs.symbol_arity[s]});
  }
  structures::Structure st(vocab, cs.universe);
  for (std::size_t i = 0; i < cs.tuples.size(); ++i) {
    st.AddTuple(cs.symbol_of_tuple[i], cs.tuples[i]);
  }
  structures::Structure core = structures::ComputeCore(st);
  a->core_universe_size = core.universe_size();
  a->counters.Add("analyzer.core_computed", 1);
  graph::Graph core_primal = core.GaifmanGraph();
  if (core_primal.num_vertices() <= ctx.exact_treewidth_below) {
    auto exact =
        graph::ExactTreewidth(core_primal, 24, ctx.ResolvedThreads(), budget);
    a->counters.Add("analyzer.treewidth_dp_states", exact.dp_states);
    if (exact.status == util::RunStatus::kCompleted) {
      a->core_treewidth = exact.treewidth;
      return;
    }
  }
  a->core_treewidth = graph::HeuristicTreewidth(core_primal).width;
}

/// Metrics that depend only on the hypergraph.
Analysis AnalyzeHypergraph(const graph::Hypergraph& hypergraph,
                           const ExecutionContext& ctx,
                           util::Budget* budget) {
  Analysis a;
  a.num_variables = hypergraph.num_vertices();
  a.num_constraints = hypergraph.num_edges();
  a.acyclic = graph::IsAlphaAcyclic(hypergraph);

  graph::Graph primal = hypergraph.PrimalGraph();
  a.treewidth_exact = false;
  {
    static const std::uint32_t kTreewidthSpan =
        util::Trace::InternName("analyzer.treewidth");
    util::ScopedSpan treewidth_span(kTreewidthSpan);
    if (primal.num_vertices() <= ctx.exact_treewidth_below &&
        !budget->Poll()) {
      auto exact =
          graph::ExactTreewidth(primal, 24, ctx.ResolvedThreads(), budget);
      a.counters.Add("analyzer.treewidth_dp_states", exact.dp_states);
      if (exact.status == util::RunStatus::kCompleted) {
        a.treewidth = exact.treewidth;
        a.treewidth_exact = true;
      }
    }
    if (!a.treewidth_exact) {
      a.treewidth = graph::HeuristicTreewidth(primal).width;
    }
  }

  static const std::uint32_t kCoversSpan =
      util::Trace::InternName("analyzer.fractional_covers");
  util::ScopedSpan covers_span(kCoversSpan);
  auto cover = graph::FractionalEdgeCoverNumber(hypergraph);
  if (cover.has_value()) {
    a.rho_star = cover->total;
    a.rho_star_valid = true;
  }
  auto fhw = graph::HeuristicFractionalHypertreeWidth(hypergraph);
  if (fhw.has_value()) {
    a.fhw_upper = fhw->width;
    a.fhw_valid = true;
  }
  return a;
}

/// Recommendation plus lower-bound certificates, shared by both entry
/// points; call after AnalyzeCore.
void Finalize(Analysis* a) {
  if (a->acyclic) {
    a->recommended_algorithm =
        "Yannakakis (alpha-acyclic: O(input + output))";
  } else if (a->treewidth >= 0 && a->treewidth <= 3) {
    a->recommended_algorithm =
        "tree-decomposition DP (Theorem 4.2: O(|V| * |D|^" +
        std::to_string(a->treewidth + 1) + "))";
  } else if (a->rho_star_valid) {
    a->recommended_algorithm =
        "Generic Join (Theorem 3.3: O(N^{" + a->rho_star.ToString() + "}))";
  } else {
    a->recommended_algorithm = "backtracking search";
  }

  if (a->rho_star_valid) {
    a->lower_bounds.push_back(LowerBoundCertificate{
        "unconditional", "Theorem 3.2",
        "for infinitely many N there are databases with |Q(D)| >= N^{" +
            a->rho_star.ToString() +
            "}; full enumeration cannot beat O(N^{" +
            a->rho_star.ToString() + "})"});
  }
  int k = a->core_treewidth >= 0 ? a->core_treewidth : a->treewidth;
  if (k >= 2) {
    a->lower_bounds.push_back(LowerBoundCertificate{
        "ETH", "Theorem 6.7",
        "no algorithm decides CSPs with this primal graph in time "
        "O(|D|^{alpha * " +
            std::to_string(k) + " / log " + std::to_string(k) +
            "}) for the universal constant alpha"});
  }
  if (k >= 3) {
    a->lower_bounds.push_back(LowerBoundCertificate{
        "SETH", "Theorem 7.2",
        "no O(|V|^c * |D|^{" + std::to_string(k) +
            " - eps}) algorithm for CSPs of treewidth " + std::to_string(k)});
  }
  if (a->num_variables >= 3 && a->treewidth == a->num_variables - 1) {
    a->lower_bounds.push_back(LowerBoundCertificate{
        "k-clique conjecture", "Section 8",
        "no O(|D|^{(omega-eps) * " + std::to_string(a->num_variables) +
            "/3 + c}) algorithm: the primal graph is a " +
            std::to_string(a->num_variables) + "-clique"});
  }
  if (a->core_treewidth >= 0 && a->core_treewidth <= 1) {
    a->lower_bounds.push_back(LowerBoundCertificate{
        "none", "Theorem 5.3",
        "the core has treewidth <= 1: the Boolean query is "
        "polynomial-time solvable (no lower bound applies)"});
  }
}

}  // namespace

double Analysis::AgmBound(double n) const {
  return rho_star_valid ? std::pow(n, rho_star.ToDouble()) : HUGE_VAL;
}

std::string Analysis::ToString() const {
  std::ostringstream out;
  out << "variables/attributes: " << num_variables
      << "\nconstraints/atoms:    " << num_constraints
      << "\nalpha-acyclic:        " << (acyclic ? "yes" : "no")
      << "\ntreewidth:            " << treewidth
      << (treewidth_exact ? " (exact)" : " (upper bound)");
  if (core_universe_size >= 0) {
    out << "\ncore size:            " << core_universe_size
        << "\ncore treewidth:       " << core_treewidth;
  }
  if (rho_star_valid) {
    out << "\nrho* (frac. cover):   " << rho_star.ToString();
  }
  if (fhw_valid) {
    out << "\nfhw (upper bound):    " << fhw_upper.ToString();
  }
  out << "\nrecommended:          " << recommended_algorithm;
  for (const auto& lb : lower_bounds) {
    out << "\n[" << lb.assumption << ", " << lb.theorem << "] "
        << lb.statement;
  }
  if (!counters.empty()) {
    out << "\neffort:";
    for (const auto& [key, value] : counters.items()) {
      out << "\n  " << key << " = " << value;
    }
  }
  return out.str();
}

Analysis AnalyzeQuery(const db::JoinQuery& query, const ExecutionContext& ctx) {
  std::shared_ptr<util::Budget> budget = ctx.ResolveBudget();
  Analysis a = AnalyzeHypergraph(query.Hypergraph(), ctx, budget.get());
  CanonicalStructure cs;
  std::map<std::string, int> attr = query.AttributeIndex();
  cs.universe = static_cast<int>(attr.size());
  std::map<std::string, int> symbol_of_name;
  for (const auto& atom : query.atoms) {
    auto [it, fresh] = symbol_of_name.try_emplace(
        atom.relation, static_cast<int>(cs.symbol_arity.size()));
    if (fresh) {
      cs.symbol_arity.push_back(static_cast<int>(atom.attributes.size()));
    }
    std::vector<int> tuple;
    tuple.reserve(atom.attributes.size());
    for (const auto& name : atom.attributes) tuple.push_back(attr[name]);
    cs.symbol_of_tuple.push_back(it->second);
    cs.tuples.push_back(std::move(tuple));
  }
  AnalyzeCore(cs, ctx, budget.get(), &a);
  Finalize(&a);
  a.status = budget->status();
  if (ctx.counters != nullptr) ctx.counters->Merge(a.counters);
  return a;
}

Analysis AnalyzeCsp(const csp::CspInstance& csp, const ExecutionContext& ctx) {
  std::shared_ptr<util::Budget> budget = ctx.ResolveBudget();
  Analysis a = AnalyzeHypergraph(csp.ConstraintHypergraph(), ctx, budget.get());
  CanonicalStructure cs;
  cs.universe = csp.num_vars;
  // Group constraints by extensional relation content.
  std::map<std::vector<std::vector<int>>, int> symbol_of_relation;
  for (const auto& c : csp.constraints) {
    auto [it, fresh] = symbol_of_relation.try_emplace(
        c.relation.tuples(), static_cast<int>(cs.symbol_arity.size()));
    if (fresh) cs.symbol_arity.push_back(c.relation.arity());
    cs.symbol_of_tuple.push_back(it->second);
    cs.tuples.push_back(c.scope);
  }
  AnalyzeCore(cs, ctx, budget.get(), &a);
  Finalize(&a);
  a.status = budget->status();
  if (ctx.counters != nullptr) ctx.counters->Merge(a.counters);
  return a;
}

}  // namespace qc::core
