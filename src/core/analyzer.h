#ifndef QC_CORE_ANALYZER_H_
#define QC_CORE_ANALYZER_H_

#include <string>
#include <vector>

#include "core/context.h"
#include "csp/csp.h"
#include "db/database.h"
#include "util/budget.h"
#include "util/counters.h"
#include "util/fraction.h"

namespace qc::core {

/// A conditional lower-bound certificate: the assumption, the theorem in
/// Marx (PODS 2021) it comes from, and the concrete consequence for this
/// instance's structure.
struct LowerBoundCertificate {
  std::string assumption;  ///< "unconditional", "ETH", "SETH", "FPT!=W[1]",
                           ///< "k-clique conjecture", "hyperclique conj.".
  std::string theorem;     ///< E.g. "Theorem 6.5".
  std::string statement;   ///< Human-readable consequence.
};

/// Structural complexity report for a query/CSP: every quantity the paper's
/// upper and lower bounds are stated against, plus the matching certificates
/// and an algorithm recommendation.
struct Analysis {
  int num_variables = 0;  ///< Attributes / variables.
  int num_constraints = 0;

  bool acyclic = false;           ///< Alpha-acyclic hypergraph.
  int treewidth = -1;             ///< Of the primal graph.
  bool treewidth_exact = false;   ///< Exact DP vs heuristic upper bound.
  int core_universe_size = -1;    ///< Size of the structure's core
                                  ///< (-1 if skipped: too large).
  int core_treewidth = -1;        ///< Treewidth of the core (Theorem 5.3).
  util::Fraction rho_star;        ///< Fractional edge cover number.
  bool rho_star_valid = false;
  util::Fraction fhw_upper;       ///< Heuristic fractional hypertree width.
  bool fhw_valid = false;

  std::string recommended_algorithm;
  std::vector<LowerBoundCertificate> lower_bounds;

  /// Unified effort counters recorded while analyzing (treewidth DP states,
  /// core computation, ...), included in ToString(). Also merged into
  /// ExecutionContext::counters when a sink is set.
  util::Counters counters;

  /// How the analysis run ended. On anything but kCompleted the exact
  /// measures degraded to heuristic bounds (treewidth_exact = false, core
  /// skipped) — the report is still well-formed, just coarser.
  util::RunStatus status = util::RunStatus::kCompleted;

  /// AGM output-size bound N^{rho*}.
  double AgmBound(double n) const;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Deprecated alias: analyzer thresholds now live on qc::ExecutionContext
/// (which adds thread count, soft deadline, seed, and a stats sink).
using AnalyzerOptions = ExecutionContext;

/// Analyzes a join query's structure (Sections 3-8 applied to one query).
/// Honors ctx.threads for the exact treewidth DP and observes the budget
/// resolved from ctx (deadline, work limit, cancellation): when it trips,
/// the analysis degrades gracefully from exact to heuristic measures
/// (treewidth_exact = false, core skipped) and reports the cause in
/// Analysis::status.
Analysis AnalyzeQuery(const db::JoinQuery& query,
                      const ExecutionContext& ctx = ExecutionContext());

/// Analyzes a CSP instance (same metrics over its hypergraph).
Analysis AnalyzeCsp(const csp::CspInstance& csp,
                    const ExecutionContext& ctx = ExecutionContext());

}  // namespace qc::core

#endif  // QC_CORE_ANALYZER_H_
