#ifndef QC_CORE_AUTOSOLVER_H_
#define QC_CORE_AUTOSOLVER_H_

#include <string>

#include "core/context.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "db/database.h"
#include "db/hybrid_join.h"

namespace qc::core {

/// Which engine the auto-router picked.
enum class SolveMethod {
  kSchaefer,     ///< Boolean domain, tractable Schaefer class.
  kTreewidthDp,  ///< Small-width primal graph (Theorem 4.2).
  kBacktracking, ///< General search.
  kYannakakis,   ///< Acyclic join query.
  kGenericJoin,  ///< Worst-case-optimal join (Theorem 3.3).
  kHybridJoin,   ///< Degree-split MM/WCOJ hybrid (DESIGN.md §15).
};

std::string ToString(SolveMethod method);

struct AutoCspResult {
  bool satisfiable = false;
  std::vector<int> assignment;
  SolveMethod method = SolveMethod::kBacktracking;
  /// How the routed engine ended. On anything but kCompleted,
  /// `satisfiable == false` means *Unknown*, not unsatisfiable.
  util::RunStatus status = util::RunStatus::kCompleted;
};

/// Deprecated alias: auto-solver thresholds now live on qc::ExecutionContext
/// (which adds thread count, soft deadline, seed, and a stats sink).
using AutoSolverOptions = ExecutionContext;

/// Routes a CSP instance to the cheapest applicable engine, in the order the
/// paper's upper-bound results suggest: Schaefer's dichotomy dispatcher for
/// Boolean domains in a tractable class, Freuder's DP for small treewidth,
/// and backtracking search otherwise. Engine effort is reported into
/// ctx.counters ("treedp.table_entries", "backtracking.nodes", ...). The
/// budget resolved from ctx is threaded into whichever engine runs; a trip
/// surfaces in AutoCspResult::status.
AutoCspResult SolveCspAuto(const csp::CspInstance& csp,
                           const ExecutionContext& ctx = ExecutionContext());

struct AutoQueryResult {
  db::JoinResult result;
  SolveMethod method = SolveMethod::kGenericJoin;
  /// How the routed engine ended. On anything but kCompleted,
  /// `result.truncated` is set and `result.tuples` is a subset of the
  /// answer.
  util::RunStatus status = util::RunStatus::kCompleted;
  /// Degree-split decision record when the hybrid planner examined the
  /// query (pattern != kNone). Populated on the kHybridJoin route and on
  /// auto-mode rejections (so reports can show *why* the trie engine ran).
  db::HybridPlan plan;
};

/// Routes a join query: Yannakakis when alpha-acyclic; otherwise the
/// degree-split hybrid planner when ctx.hybrid_mode admits it (kOn whenever
/// the small-pattern shape matches, kAuto additionally requiring a
/// profitable heavy core); Generic Join for everything else. ctx.threads
/// (or QC_THREADS) parallelizes the Generic Join path; effort counters land
/// in ctx.counters. All engines observe the budget resolved from ctx; a
/// trip surfaces in AutoQueryResult::status and `result.truncated`.
AutoQueryResult EvaluateQueryAuto(const db::JoinQuery& query,
                                  const db::Database& db,
                                  const ExecutionContext& ctx =
                                      ExecutionContext());

}  // namespace qc::core

#endif  // QC_CORE_AUTOSOLVER_H_
