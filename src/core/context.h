#ifndef QC_CORE_CONTEXT_H_
#define QC_CORE_CONTEXT_H_

#include <chrono>
#include <cstdint>

#include "util/counters.h"
#include "util/threadpool.h"

namespace qc {

/// One knob surface for every engine in the library.
///
/// Historically each entry point grew its own options struct
/// (`AnalyzerOptions`, `AutoSolverOptions`) and its own stats struct, which
/// left nowhere to hang cross-cutting execution concerns. ExecutionContext
/// folds them together: analysis/solver thresholds, the parallel runtime's
/// thread count, a soft deadline, the RNG seed for randomized engines, and
/// an optional shared Counters sink every engine reports effort into.
///
/// Header-only and dependency-free below util/, so the db and csp layers can
/// accept it without linking core.
struct ExecutionContext {
  // -- analysis thresholds (field order is kept stable: existing call sites
  //    use designated initializers against the old AnalyzerOptions alias) --
  int exact_treewidth_below = 18;   ///< Use the 2^n DP up to this many vars.
  int core_computation_below = 12;  ///< Compute the core up to this size.

  // -- auto-solver thresholds (formerly AutoSolverOptions) --
  int treewidth_dp_max_width = 3;
  int max_schaefer_arity = 12;

  // -- execution runtime --
  /// Worker count for the parallel kernels; 0 defers to the QC_THREADS
  /// environment variable (default 1). All kernels produce bit-identical
  /// results at any thread count.
  int threads = 0;
  /// Soft deadline in seconds from construction (0 = none). Advisory:
  /// engines consult DeadlineExpired() at safe points — the analyzer falls
  /// back from exact to heuristic structure measures, color coding stops
  /// opening new trial rounds — but never return a wrong answer for it.
  double soft_deadline_seconds = 0.0;
  /// Seed for randomized engines (color coding, generators).
  std::uint64_t seed = 1;
  /// Optional effort sink; engines Add() their counters when non-null.
  util::Counters* counters = nullptr;

  int ResolvedThreads() const {
    return threads > 0 ? threads : util::ThreadPool::DefaultThreadCount();
  }

  bool DeadlineExpired() const {
    if (soft_deadline_seconds <= 0.0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_time;
    return elapsed.count() >= soft_deadline_seconds;
  }

  void Count(std::string_view key, std::uint64_t delta) const {
    if (counters != nullptr) counters->Add(key, delta);
  }

  /// When the clock for soft_deadline_seconds started; defaults to context
  /// construction, re-armable by assigning steady_clock::now().
  std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();
};

}  // namespace qc

#endif  // QC_CORE_CONTEXT_H_
