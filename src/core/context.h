#ifndef QC_CORE_CONTEXT_H_
#define QC_CORE_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <memory>

#include "util/budget.h"
#include "util/counters.h"
#include "util/threadpool.h"

namespace qc {

namespace db {
class IndexCache;  // core/context.h stays header-only below db/.
}  // namespace db

namespace util {
class Arena;  // forward-declared for the same header-only reason.
}  // namespace util

/// How the degree-split hybrid MM/WCOJ planner (db::HybridJoin) participates
/// in query routing. kAuto routes small-pattern queries through the hybrid
/// only when the degree partition says the heavy core is dense enough to
/// pay; kOn forces the hybrid whenever the pattern applies; kOff never
/// routes through it.
enum class HybridMode {
  kAuto = 0,
  kOn,
  kOff,
};

/// One knob surface for every engine in the library.
///
/// Historically each entry point grew its own options struct
/// (`AnalyzerOptions`, `AutoSolverOptions`) and its own stats struct, which
/// left nowhere to hang cross-cutting execution concerns. ExecutionContext
/// folds them together: analysis/solver thresholds, the parallel runtime's
/// thread count, a deadline/budget, the RNG seed for randomized engines, and
/// an optional shared Counters sink every engine reports effort into.
///
/// Header-only and dependency-free below util/, so the db and csp layers can
/// accept it without linking core.
struct ExecutionContext {
  // -- analysis thresholds (field order is kept stable: existing call sites
  //    use designated initializers against the old AnalyzerOptions alias) --
  int exact_treewidth_below = 18;   ///< Use the 2^n DP up to this many vars.
  int core_computation_below = 12;  ///< Compute the core up to this size.

  // -- auto-solver thresholds (formerly AutoSolverOptions) --
  int treewidth_dp_max_width = 3;
  int max_schaefer_arity = 12;

  // -- execution runtime --
  /// Worker count for the parallel kernels; 0 defers to the QC_THREADS
  /// environment variable (default 1). All kernels produce bit-identical
  /// results at any thread count.
  int threads = 0;
  /// Deadline in seconds from construction (0 = none). Enforced
  /// cooperatively: ResolveBudget() arms a util::Budget with it, engines
  /// poll the budget at safe points, unwind cleanly, and report how they
  /// ended through a util::RunStatus — they never return a wrong answer,
  /// only a truncated/degraded one that says so.
  double soft_deadline_seconds = 0.0;
  /// Seed for randomized engines (color coding, generators).
  std::uint64_t seed = 1;
  /// Optional effort sink; engines Add() their counters when non-null.
  util::Counters* counters = nullptr;
  /// Optional shared trie-index cache (db::IndexCache). When non-null,
  /// trie-based engines key their per-atom indexes by
  /// (relation, version, projection signature) and reuse warm entries
  /// instead of rebuilding; results stay bit-identical to cold runs. Safe
  /// to share across concurrent evaluations and contexts.
  db::IndexCache* index_cache = nullptr;
  /// Optional per-query scratch arena (util::Arena) for join-time
  /// allocations: leapfrog span buffers, trie-build scratch, enumerator
  /// frontiers. NOT thread-safe — single-threaded engines use it directly;
  /// parallel engines must give each worker its own arena and leave this
  /// one to the coordinating thread. Owners reset/destroy it after the
  /// query; engines never free individual allocations.
  util::Arena* arena = nullptr;

  // -- cancellation / resource budget --
  /// Output-row budget for row-producing engines (0 = unlimited); folded
  /// into ResolveBudget() alongside the deadline.
  std::uint64_t max_output_rows = 0;
  /// Work-step budget across engine safe points (0 = unlimited).
  std::uint64_t max_work_steps = 0;
  /// Shared budget for this run. When null, entry points resolve one from
  /// the knobs above via ResolveBudget(). Set it explicitly to share one
  /// budget across several calls or to cancel externally
  /// (budget->RequestCancel() from any thread).
  std::shared_ptr<util::Budget> budget;

  int ResolvedThreads() const {
    return threads > 0 ? threads : util::ThreadPool::DefaultThreadCount();
  }

  /// The budget this run should observe: the explicit `budget` if set, else
  /// a fresh one armed from soft_deadline_seconds (relative to start_time),
  /// max_output_rows, and max_work_steps. Entry points resolve once and
  /// hand the same Budget to every sub-engine and worker thread.
  std::shared_ptr<util::Budget> ResolveBudget() const {
    if (budget != nullptr) return budget;
    auto b = std::make_shared<util::Budget>();
    if (soft_deadline_seconds > 0.0) {
      b->ArmDeadlineAt(
          start_time +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(soft_deadline_seconds)));
    }
    if (max_output_rows > 0) b->ArmRowLimit(max_output_rows);
    if (max_work_steps > 0) b->ArmWorkLimit(max_work_steps);
    return b;
  }

  /// Deprecated probe kept for compatibility: one steady_clock::now() per
  /// call, no stride caching, no status recording. Engines use
  /// ResolveBudget() + Budget::Poll() instead.
  bool DeadlineExpired() const {
    if (soft_deadline_seconds <= 0.0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_time;
    return elapsed.count() >= soft_deadline_seconds;
  }

  void Count(std::string_view key, std::uint64_t delta) const {
    if (counters != nullptr) counters->Add(key, delta);
  }

  /// When the clock for soft_deadline_seconds started; defaults to context
  /// construction, re-armable by assigning steady_clock::now().
  std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();

  // -- hybrid MM/WCOJ planner (fields appended so existing designated
  //    initializers keep compiling) --
  /// Routing mode of the degree-split hybrid planner; see HybridMode.
  HybridMode hybrid_mode = HybridMode::kAuto;
  /// Degree threshold Δ override for the hybrid planner (0 = auto-pick
  /// max(1, √N) from the largest atom).
  std::int64_t hybrid_delta = 0;
};

}  // namespace qc

#endif  // QC_CORE_CONTEXT_H_
