#include "kernels/boolmm.h"

#include "kernels/dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define QC_KERNELS_X86 1
#endif

namespace qc::kernels {

void OrWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void OrWords4Scalar(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] |= (s0[i] | s1[i]) | (s2[i] | s3[i]);
  }
}

void AndWords2Scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void AndWords3Scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, const std::uint64_t* c,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i] & c[i];
}

#if defined(QC_KERNELS_X86)

__attribute__((target("avx2"))) void OrWordsAvx2(std::uint64_t* dst,
                                                 const std::uint64_t* src,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void OrWords4Avx2(
    std::uint64_t* dst, const std::uint64_t* s0, const std::uint64_t* s1,
    const std::uint64_t* s2, const std::uint64_t* s3, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s1 + i));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s2 + i));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s3 + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i merged = _mm256_or_si256(_mm256_or_si256(v0, v1),
                                           _mm256_or_si256(v2, v3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, merged));
  }
  for (; i < n; ++i) dst[i] |= (s0[i] | s1[i]) | (s2[i] | s3[i]);
}

__attribute__((target("avx512f"))) void OrWordsAvx512(std::uint64_t* dst,
                                                      const std::uint64_t* src,
                                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx512f"))) void OrWords4Avx512(
    std::uint64_t* dst, const std::uint64_t* s0, const std::uint64_t* s1,
    const std::uint64_t* s2, const std::uint64_t* s3, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v0 = _mm512_loadu_si512(s0 + i);
    const __m512i v1 = _mm512_loadu_si512(s1 + i);
    const __m512i v2 = _mm512_loadu_si512(s2 + i);
    const __m512i v3 = _mm512_loadu_si512(s3 + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i merged = _mm512_or_si512(_mm512_or_si512(v0, v1),
                                           _mm512_or_si512(v2, v3));
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, merged));
  }
  for (; i < n; ++i) dst[i] |= (s0[i] | s1[i]) | (s2[i] | s3[i]);
}

__attribute__((target("avx2"))) void AndWords2Avx2(std::uint64_t* dst,
                                                   const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

__attribute__((target("avx2"))) void AndWords3Avx2(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(_mm256_and_si256(va, vb), vc));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i] & c[i];
}

__attribute__((target("avx512f"))) void AndWords2Avx512(std::uint64_t* dst,
                                                        const std::uint64_t* a,
                                                        const std::uint64_t* b,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

__attribute__((target("avx512f"))) void AndWords3Avx512(
    std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
    const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __m512i vc = _mm512_loadu_si512(c + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(_mm512_and_si512(va, vb), vc));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i] & c[i];
}

#else  // !QC_KERNELS_X86

void AndWords2Avx2(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  AndWords2Scalar(dst, a, b, n);
}
void AndWords3Avx2(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, const std::uint64_t* c,
                   std::size_t n) {
  AndWords3Scalar(dst, a, b, c, n);
}
void AndWords2Avx512(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  AndWords2Scalar(dst, a, b, n);
}
void AndWords3Avx512(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, const std::uint64_t* c,
                     std::size_t n) {
  AndWords3Scalar(dst, a, b, c, n);
}

void OrWordsAvx2(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  OrWordsScalar(dst, src, n);
}
void OrWords4Avx2(std::uint64_t* dst, const std::uint64_t* s0,
                  const std::uint64_t* s1, const std::uint64_t* s2,
                  const std::uint64_t* s3, std::size_t n) {
  OrWords4Scalar(dst, s0, s1, s2, s3, n);
}
void OrWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  OrWordsScalar(dst, src, n);
}
void OrWords4Avx512(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n) {
  OrWords4Scalar(dst, s0, s1, s2, s3, n);
}

#endif  // QC_KERNELS_X86

void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      OrWordsAvx512(dst, src, n);
      return;
    case SimdLevel::kAvx2:
      OrWordsAvx2(dst, src, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
  OrWordsScalar(dst, src, n);
}

void OrWords4(std::uint64_t* dst, const std::uint64_t* s0,
              const std::uint64_t* s1, const std::uint64_t* s2,
              const std::uint64_t* s3, std::size_t n) {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      OrWords4Avx512(dst, s0, s1, s2, s3, n);
      return;
    case SimdLevel::kAvx2:
      OrWords4Avx2(dst, s0, s1, s2, s3, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
  OrWords4Scalar(dst, s0, s1, s2, s3, n);
}

void AndWords2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::size_t n) {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      AndWords2Avx512(dst, a, b, n);
      return;
    case SimdLevel::kAvx2:
      AndWords2Avx2(dst, a, b, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
  AndWords2Scalar(dst, a, b, n);
}

void AndWords3(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, const std::uint64_t* c, std::size_t n) {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      AndWords3Avx512(dst, a, b, c, n);
      return;
    case SimdLevel::kAvx2:
      AndWords3Avx2(dst, a, b, c, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
  AndWords3Scalar(dst, a, b, c, n);
}

std::uint64_t AndPopcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  // Plain scalar popcount loop: compilers lower __builtin_popcountll to the
  // hardware instruction, and the load/AND stream saturates memory long
  // before the counting does, so there is no SIMD variant to dispatch to.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

}  // namespace qc::kernels
