#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qc::kernels {

namespace {

SimdLevel ProbeCpu() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  // AVX512BW gives the epi64 mask compares + byte ops and AVX512VL the
  // 256-bit masked compress-stores the kernels use on top of the F
  // foundation; every AVX-512 server part since Skylake-X has all three,
  // so requiring the trio costs nothing real and keeps the kernels free
  // of per-instruction feature checks.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ResolveFromEnv() {
  SimdLevel best = BestSupportedSimdLevel();
  const char* env = std::getenv("QC_SIMD");
  if (env == nullptr || *env == '\0') return best;
  SimdLevel asked = best;
  if (std::strcmp(env, "scalar") == 0) {
    asked = SimdLevel::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    asked = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    asked = SimdLevel::kAvx512;
  }
  return asked <= best ? asked : best;
}

std::atomic<int>& ActiveSlot() {
  static std::atomic<int> active(-1);
  return active;
}

}  // namespace

SimdLevel BestSupportedSimdLevel() {
  static const SimdLevel best = ProbeCpu();
  return best;
}

SimdLevel ActiveSimdLevel() {
  int cur = ActiveSlot().load(std::memory_order_acquire);
  if (cur >= 0) return static_cast<SimdLevel>(cur);
  SimdLevel resolved = ResolveFromEnv();
  int expected = -1;
  ActiveSlot().compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_acq_rel);
  return static_cast<SimdLevel>(ActiveSlot().load(std::memory_order_acquire));
}

SimdLevel ForceSimdLevel(SimdLevel level) {
  SimdLevel best = BestSupportedSimdLevel();
  SimdLevel installed = level <= best ? level : best;
  ActiveSlot().store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

}  // namespace qc::kernels
