#ifndef QC_KERNELS_DISPATCH_H_
#define QC_KERNELS_DISPATCH_H_

namespace qc::kernels {

/// Instruction-set tier of the kernel layer, ordered so "wider" compares
/// greater. Every kernel in src/kernels/ has a scalar reference
/// implementation plus AVX2/AVX-512 variants compiled behind per-function
/// target attributes; the variant actually run is chosen once per process.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The widest level this CPU can execute (cpuid probe, cached).
SimdLevel BestSupportedSimdLevel();

/// The level the dispatched kernels run at. Resolved once on first use:
/// the QC_SIMD environment variable (scalar | avx2 | avx512) when set and
/// supported — an unsupported or unrecognized request clamps down to
/// BestSupportedSimdLevel() — else the best supported level. Every
/// RunReport records this under "stats.simd_level", so numbers from
/// different machines are always attributable to the path that ran.
SimdLevel ActiveSimdLevel();

/// Overrides the active level for tests and benchmarks (clamped to
/// BestSupportedSimdLevel()). Returns the level actually installed.
/// Process-global; not meant for concurrent use with running kernels.
SimdLevel ForceSimdLevel(SimdLevel level);

/// "scalar" | "avx2" | "avx512".
const char* SimdLevelName(SimdLevel level);

}  // namespace qc::kernels

#endif  // QC_KERNELS_DISPATCH_H_
