#ifndef QC_KERNELS_SORT_H_
#define QC_KERNELS_SORT_H_

#include <cstddef>
#include <cstdint>

#include "util/arena.h"

namespace qc::kernels {

/// Stable LSD radix sort of a row permutation (DESIGN.md §12).
///
/// Sorts `idx` (a permutation of [0, n), in place) so that the rows
/// base[idx[i] * stride ...] are ordered lexicographically by the columns
/// `cols[0..ncols)` in that significance order (cols[0] most significant).
/// Ties beyond the listed columns keep their incoming `idx` order (the sort
/// is stable), so callers append tie-breaking columns rather than relying
/// on input order.
///
/// This replaces the comparison sort in the trie build's materialize+sort
/// phase: columns are processed least-significant first, each one
/// materialized into a contiguous biased-u64 key buffer and sorted with
/// byte-wise counting passes. A single prefix scan per column histograms
/// all 8 byte positions at once and passes over bytes on which every key
/// agrees are skipped, so a column of small IDs costs 1-2 scatter passes
/// instead of the log(n) cache-missing gather comparisons per element of
/// std::sort. Signed order is preserved by biasing keys with the sign bit.
///
/// Scratch (three n-sized buffers) comes from `arena` when non-null, else
/// from a function-local allocation.
void SortRowsByColumns(const std::int64_t* base, std::size_t stride,
                       std::size_t n, const std::int32_t* cols,
                       std::size_t ncols, std::uint32_t* idx,
                       util::Arena* arena);

/// Row count below which SortRowsByColumns is not expected to beat a
/// comparison sort; FlatRelation::SortLexAndDedup's auto policy switches
/// on this bound.
inline constexpr std::size_t kRadixMinRows = 128;

}  // namespace qc::kernels

#endif  // QC_KERNELS_SORT_H_
