#ifndef QC_KERNELS_INTERSECT_H_
#define QC_KERNELS_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace qc::kernels {

/// Sorted-set intersection with positions, the per-level primitive behind
/// leapfrog triejoin (DESIGN.md §12).
///
/// Inputs are STRICTLY increasing 64-bit values (trie level spans are
/// deduplicated by construction, so every a-element matches at most one
/// b-element). For each common value, ascending, the kernel records the
/// matching index into `pos_a` / `pos_b` and returns the match count.
/// Capacity of both position arrays must be >= min(na, nb); na and nb must
/// fit in int32.
///
/// All variants produce byte-identical outputs; the property tests compare
/// them over randomized sizes, alignments and adversarial skew. The SIMD
/// variants run an all-pairs block compare (4x4 epi64 lanes under AVX2,
/// 8x8 under AVX-512: one load pair plus lane rotations and mask extraction
/// per block) with a scalar merge tail; on hardware without the level they
/// fall back to the scalar reference.
std::size_t IntersectPairPositionsScalar(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b);
std::size_t IntersectPairPositionsAvx2(const std::int64_t* a, std::size_t na,
                                       const std::int64_t* b, std::size_t nb,
                                       std::int32_t* pos_a, std::int32_t* pos_b);
std::size_t IntersectPairPositionsAvx512(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b);

/// Galloping variant for skewed pairs (one side many times the other): the
/// short side drives, each element located in the long side by a doubling
/// probe + bounded binary search — O(short * log(long/short)). Output is
/// identical to the merge kernels. `a` must be the short side for the
/// complexity claim to hold; correctness does not depend on it.
std::size_t IntersectPairPositionsGallop(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b);

/// Dispatched entry point: galloping when the size ratio exceeds
/// kGallopSkewRatio (SIMD block compares cannot amortize a span they mostly
/// skip), else the widest variant ActiveSimdLevel() allows.
std::size_t IntersectPairPositions(const std::int64_t* a, std::size_t na,
                                   const std::int64_t* b, std::size_t nb,
                                   std::int32_t* pos_a, std::int32_t* pos_b);

/// Skew threshold above which IntersectPairPositions gallops instead of
/// block-comparing. Exposed so engine-side span heuristics and the
/// microbenchmarks agree with the kernel's own policy.
inline constexpr std::size_t kGallopSkewRatio = 32;

}  // namespace qc::kernels

#endif  // QC_KERNELS_INTERSECT_H_
