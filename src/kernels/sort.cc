#include "kernels/sort.h"

#include <cstring>
#include <utility>

namespace qc::kernels {

namespace {

/// Maps int64 to uint64 preserving order (flips the sign bit).
inline std::uint64_t Bias(std::int64_t v) {
  return static_cast<std::uint64_t>(v) ^ (std::uint64_t{1} << 63);
}

}  // namespace

void SortRowsByColumns(const std::int64_t* base, std::size_t stride,
                       std::size_t n, const std::int32_t* cols,
                       std::size_t ncols, std::uint32_t* idx,
                       util::Arena* arena) {
  if (n <= 1 || ncols == 0) return;
  util::Arena local;
  util::Arena* a = arena != nullptr ? arena : &local;
  std::uint64_t* keys = a->AllocateArray<std::uint64_t>(n);
  std::uint64_t* tmp_keys = a->AllocateArray<std::uint64_t>(n);
  std::uint32_t* tmp_idx = a->AllocateArray<std::uint32_t>(n);

  // LSD over columns: least-significant column first; stability of each
  // column's byte passes makes the whole order lexicographic by the end.
  for (std::size_t c = ncols; c-- > 0;) {
    const std::int32_t col = cols[c];
    // One gather pass materializes the column in current idx order and
    // histograms all 8 byte positions at once.
    std::size_t hist[8][256];
    std::memset(hist, 0, sizeof(hist));
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key =
          Bias(base[static_cast<std::size_t>(idx[i]) * stride + col]);
      keys[i] = key;
      for (int byte = 0; byte < 8; ++byte) {
        ++hist[byte][(key >> (byte * 8)) & 0xFF];
      }
    }
    std::uint64_t* k_src = keys;
    std::uint64_t* k_dst = tmp_keys;
    std::uint32_t* i_src = idx;
    std::uint32_t* i_dst = tmp_idx;
    for (int byte = 0; byte < 8; ++byte) {
      std::size_t* counts = hist[byte];
      // All keys share this byte: nothing to move.
      if (counts[(k_src[0] >> (byte * 8)) & 0xFF] == n) continue;
      std::size_t offsets[256];
      std::size_t running = 0;
      for (int d = 0; d < 256; ++d) {
        offsets[d] = running;
        running += counts[d];
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t slot = offsets[(k_src[i] >> (byte * 8)) & 0xFF]++;
        k_dst[slot] = k_src[i];
        i_dst[slot] = i_src[i];
      }
      std::swap(k_src, k_dst);
      std::swap(i_src, i_dst);
    }
    // An odd number of scatter passes leaves the live permutation in the
    // temporary; copy it home (keys need no copy — they are rebuilt from
    // the next column).
    if (i_src != idx) std::memcpy(idx, i_src, n * sizeof(std::uint32_t));
  }
}

}  // namespace qc::kernels
