#ifndef QC_KERNELS_BOOLMM_H_
#define QC_KERNELS_BOOLMM_H_

#include <cstddef>
#include <cstdint>

namespace qc::kernels {

/// Word-parallel OR kernels behind BoolMatrix::Multiply (DESIGN.md §12).
///
/// The Boolean product's inner loop is "dst |= B.row(k)" over the set bits
/// k of A's row. OrWords is that primitive; OrWords4 is the blocked form
/// that folds four source rows per pass, quartering the dst load/store
/// traffic that dominates the scalar loop. Rows of the contiguous
/// BoolMatrix layout are 64-byte aligned in stride, so the 256/512-bit
/// variants stream whole cache lines. Dispatched on ActiveSimdLevel();
/// all variants are bitwise-identical.
void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void OrWords4(std::uint64_t* dst, const std::uint64_t* s0,
              const std::uint64_t* s1, const std::uint64_t* s2,
              const std::uint64_t* s3, std::size_t n);

/// Per-level implementations, exposed for the equivalence tests.
void OrWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
void OrWords4Scalar(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n);
void OrWordsAvx2(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void OrWords4Avx2(std::uint64_t* dst, const std::uint64_t* s0,
                  const std::uint64_t* s1, const std::uint64_t* s2,
                  const std::uint64_t* s3, std::size_t n);
void OrWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
void OrWords4Avx512(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n);

}  // namespace qc::kernels

#endif  // QC_KERNELS_BOOLMM_H_
