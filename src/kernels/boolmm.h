#ifndef QC_KERNELS_BOOLMM_H_
#define QC_KERNELS_BOOLMM_H_

#include <cstddef>
#include <cstdint>

namespace qc::kernels {

/// Word-parallel OR kernels behind BoolMatrix::Multiply (DESIGN.md §12).
///
/// The Boolean product's inner loop is "dst |= B.row(k)" over the set bits
/// k of A's row. OrWords is that primitive; OrWords4 is the blocked form
/// that folds four source rows per pass, quartering the dst load/store
/// traffic that dominates the scalar loop. Rows of the contiguous
/// BoolMatrix layout are 64-byte aligned in stride, so the 256/512-bit
/// variants stream whole cache lines. Dispatched on ActiveSimdLevel();
/// all variants are bitwise-identical.
void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void OrWords4(std::uint64_t* dst, const std::uint64_t* s0,
              const std::uint64_t* s1, const std::uint64_t* s2,
              const std::uint64_t* s3, std::size_t n);

/// Per-level implementations, exposed for the equivalence tests.
void OrWordsScalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
void OrWords4Scalar(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n);
void OrWordsAvx2(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void OrWords4Avx2(std::uint64_t* dst, const std::uint64_t* s0,
                  const std::uint64_t* s1, const std::uint64_t* s2,
                  const std::uint64_t* s3, std::size_t n);
void OrWordsAvx512(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
void OrWords4Avx512(std::uint64_t* dst, const std::uint64_t* s0,
                    const std::uint64_t* s1, const std::uint64_t* s2,
                    const std::uint64_t* s3, std::size_t n);

/// Word-parallel AND kernels behind the hybrid degree-split planner's
/// heavy-phase witness enumeration (DESIGN.md §15): the all-heavy core is
/// evaluated on BoolMatrix rows, and every witness set is an AND of two or
/// three such rows. Same dispatch and bitwise-identity contract as the OR
/// kernels above.
void AndWords2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::size_t n);
void AndWords3(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, const std::uint64_t* c, std::size_t n);

/// popcount(a & b) over n words, without materializing the intersection —
/// the counting path of the heavy phase.
std::uint64_t AndPopcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n);

/// Per-level implementations, exposed for the equivalence tests.
void AndWords2Scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n);
void AndWords3Scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, const std::uint64_t* c,
                     std::size_t n);
void AndWords2Avx2(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n);
void AndWords3Avx2(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, const std::uint64_t* c,
                   std::size_t n);
void AndWords2Avx512(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n);
void AndWords3Avx512(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, const std::uint64_t* c,
                     std::size_t n);

}  // namespace qc::kernels

#endif  // QC_KERNELS_BOOLMM_H_
