#include "kernels/intersect.h"

#include <algorithm>

#include "kernels/dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define QC_KERNELS_X86 1
#endif

namespace qc::kernels {

namespace {

/// Scalar merge over the remaining suffixes — the tail of every blocked
/// variant and the body of the scalar reference.
std::size_t MergeTail(const std::int64_t* a, std::size_t i, std::size_t na,
                      const std::int64_t* b, std::size_t j, std::size_t nb,
                      std::int32_t* pos_a, std::int32_t* pos_b,
                      std::size_t k) {
  while (i < na && j < nb) {
    const std::int64_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      pos_a[k] = static_cast<std::int32_t>(i);
      pos_b[k] = static_cast<std::int32_t>(j);
      ++k;
      ++i;
      ++j;
    }
  }
  return k;
}

/// First index in [lo, n) with arr[index] >= target: doubling probe from
/// `lo`, then bounded binary search. The building block of the gallop
/// variant.
std::size_t GallopLowerBound(const std::int64_t* arr, std::size_t lo,
                             std::size_t n, std::int64_t target) {
  std::size_t offset = 1;
  while (lo + offset < n && arr[lo + offset] < target) offset <<= 1;
  std::size_t begin = lo + offset / 2;
  std::size_t end = std::min(lo + offset + 1, n);
  return static_cast<std::size_t>(
      std::lower_bound(arr + begin, arr + end, target) - arr);
}

}  // namespace

std::size_t IntersectPairPositionsScalar(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b) {
  return MergeTail(a, 0, na, b, 0, nb, pos_a, pos_b, 0);
}

std::size_t IntersectPairPositionsGallop(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b) {
  std::size_t k = 0, j = 0;
  for (std::size_t i = 0; i < na && j < nb; ++i) {
    const std::int64_t x = a[i];
    if (b[j] < x) {
      j = GallopLowerBound(b, j, nb, x);
      if (j == nb) break;
    }
    if (b[j] == x) {
      pos_a[k] = static_cast<std::int32_t>(i);
      pos_b[k] = static_cast<std::int32_t>(j);
      ++k;
      ++j;
    }
  }
  return k;
}

#if defined(QC_KERNELS_X86)

__attribute__((target("avx2"))) std::size_t IntersectPairPositionsAvx2(
    const std::int64_t* a, std::size_t na, const std::int64_t* b,
    std::size_t nb, std::int32_t* pos_a, std::int32_t* pos_b) {
  std::size_t i = 0, j = 0, k = 0;
  // All-pairs 4x4 block compare: one 256-bit load per side, the b block
  // rotated through its 4 lane orders so every (a-lane, b-lane) pair meets
  // exactly one cmpeq. Inputs are strictly increasing, so each a-lane
  // matches at most one rotation; because a lane hits rotation r exactly
  // when bit l of m_r is set, the two bits of r are recovered without a
  // search as OR-combinations of the rotation masks. The block advance is
  // branchless — the only data-dependent branches left are the
  // non-overlap skips, which are near-perfectly predicted on both dense
  // (never taken) and disjoint (always taken) inputs.
  while (i + 4 <= na && j + 4 <= nb) {
    if (a[i + 3] < b[j]) {
      i += 4;
      continue;
    }
    if (b[j + 3] < a[i]) {
      j += 4;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i vb1 = _mm256_permute4x64_epi64(vb, 0x39);  // lanes 1,2,3,0
    const __m256i vb2 = _mm256_permute4x64_epi64(vb, 0x4E);  // lanes 2,3,0,1
    const __m256i vb3 = _mm256_permute4x64_epi64(vb, 0x93);  // lanes 3,0,1,2
    const unsigned m0 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb))));
    const unsigned m1 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb1))));
    const unsigned m2 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb2))));
    const unsigned m3 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb3))));
    const unsigned r_bit0 = m1 | m3;  // rotations 1 and 3 set bit 0 of r
    const unsigned r_bit1 = m2 | m3;  // rotations 2 and 3 set bit 1 of r
    unsigned any = m0 | r_bit0 | r_bit1;
    while (any != 0) {
      const int l = __builtin_ctz(any);
      any &= any - 1;
      const int r = static_cast<int>((r_bit0 >> l) & 1u) |
                    (static_cast<int>((r_bit1 >> l) & 1u) << 1);
      pos_a[k] = static_cast<std::int32_t>(i + static_cast<std::size_t>(l));
      pos_b[k] = static_cast<std::int32_t>(
          j + static_cast<std::size_t>((l + r) & 3));
      ++k;
    }
    const std::size_t step_a = a[i + 3] <= b[j + 3] ? 4 : 0;
    const std::size_t step_b = b[j + 3] <= a[i + 3] ? 4 : 0;
    i += step_a;
    j += step_b;
  }
  return MergeTail(a, i, na, b, j, nb, pos_a, pos_b, k);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::size_t
IntersectPairPositionsAvx512(const std::int64_t* a, std::size_t na,
                             const std::int64_t* b, std::size_t nb,
                             std::int32_t* pos_a, std::int32_t* pos_b) {
  std::size_t i = 0, j = 0, k = 0;
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i twos = _mm256_set1_epi32(2);
  const __m256i fours = _mm256_set1_epi32(4);
  const __m256i seven = _mm256_set1_epi32(7);
  // 8x8 all-pairs block: valignq(vb, vb, r) rotates the b block left by r
  // lanes, so rotation r's lane-l hit pairs a[i+l] with b[j+((l+r)&7)].
  // Each a lane matches at most one rotation, so the three bits of r are
  // plain ORs of the rotation masks; both position streams are then formed
  // in-register and emitted with one mask-compressed store each — the
  // whole block body is branch-free.
  while (i + 8 <= na && j + 8 <= nb) {
    if (a[i + 7] < b[j]) {
      i += 8;
      continue;
    }
    if (b[j + 7] < a[i]) {
      j += 8;
      continue;
    }
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + j);
    const __mmask8 m0 = _mm512_cmpeq_epi64_mask(va, vb);
    const __mmask8 m1 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 1));
    const __mmask8 m2 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 2));
    const __mmask8 m3 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 3));
    const __mmask8 m4 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 4));
    const __mmask8 m5 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 5));
    const __mmask8 m6 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 6));
    const __mmask8 m7 =
        _mm512_cmpeq_epi64_mask(va, _mm512_alignr_epi64(vb, vb, 7));
    const __mmask8 r_bit0 = m1 | m3 | m5 | m7;
    const __mmask8 r_bit1 = m2 | m3 | m6 | m7;
    const __mmask8 r_bit2 = m4 | m5 | m6 | m7;
    const __mmask8 any = m0 | r_bit0 | r_bit1 | r_bit2;
    if (any != 0) {
      const __m256i a_lanes =
          _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i)), lane_ids);
      const __m256i r = _mm256_or_si256(
          _mm256_or_si256(_mm256_maskz_mov_epi32(r_bit0, ones),
                          _mm256_maskz_mov_epi32(r_bit1, twos)),
          _mm256_maskz_mov_epi32(r_bit2, fours));
      const __m256i b_lanes = _mm256_add_epi32(
          _mm256_set1_epi32(static_cast<int>(j)),
          _mm256_and_si256(_mm256_add_epi32(lane_ids, r), seven));
      _mm256_mask_compressstoreu_epi32(pos_a + k, any, a_lanes);
      _mm256_mask_compressstoreu_epi32(pos_b + k, any, b_lanes);
      k += static_cast<std::size_t>(__builtin_popcount(any));
    }
    const std::size_t step_a = a[i + 7] <= b[j + 7] ? 8 : 0;
    const std::size_t step_b = b[j + 7] <= a[i + 7] ? 8 : 0;
    i += step_a;
    j += step_b;
  }
  return MergeTail(a, i, na, b, j, nb, pos_a, pos_b, k);
}

#else  // !QC_KERNELS_X86: the SIMD names stay callable, running the
       // reference implementation.

std::size_t IntersectPairPositionsAvx2(const std::int64_t* a, std::size_t na,
                                       const std::int64_t* b, std::size_t nb,
                                       std::int32_t* pos_a,
                                       std::int32_t* pos_b) {
  return IntersectPairPositionsScalar(a, na, b, nb, pos_a, pos_b);
}

std::size_t IntersectPairPositionsAvx512(const std::int64_t* a, std::size_t na,
                                         const std::int64_t* b, std::size_t nb,
                                         std::int32_t* pos_a,
                                         std::int32_t* pos_b) {
  return IntersectPairPositionsScalar(a, na, b, nb, pos_a, pos_b);
}

#endif  // QC_KERNELS_X86

std::size_t IntersectPairPositions(const std::int64_t* a, std::size_t na,
                                   const std::int64_t* b, std::size_t nb,
                                   std::int32_t* pos_a, std::int32_t* pos_b) {
  if (na == 0 || nb == 0) return 0;
  // Skewed pairs gallop: the block compare would stream the long side for
  // nothing. The short side must drive the gallop.
  if (na > nb * kGallopSkewRatio) {
    std::size_t k = IntersectPairPositionsGallop(b, nb, a, na, pos_b, pos_a);
    return k;
  }
  if (nb > na * kGallopSkewRatio) {
    return IntersectPairPositionsGallop(a, na, b, nb, pos_a, pos_b);
  }
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      return IntersectPairPositionsAvx512(a, na, b, nb, pos_a, pos_b);
    case SimdLevel::kAvx2:
      return IntersectPairPositionsAvx2(a, na, b, nb, pos_a, pos_b);
    case SimdLevel::kScalar:
      break;
  }
  return IntersectPairPositionsScalar(a, na, b, nb, pos_a, pos_b);
}

}  // namespace qc::kernels
