#include "graph/hypergraph.h"

#include <algorithm>
#include <set>

#include "util/lp.h"

namespace qc::graph {

int Hypergraph::AddEdge(std::vector<int> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  edges_.push_back(std::move(vertices));
  return static_cast<int>(edges_.size()) - 1;
}

std::vector<int> Hypergraph::EdgesContaining(int v) const {
  std::vector<int> out;
  for (int e = 0; e < num_edges(); ++e) {
    if (std::binary_search(edges_[e].begin(), edges_[e].end(), v)) {
      out.push_back(e);
    }
  }
  return out;
}

bool Hypergraph::IsUniform(int d) const {
  for (const auto& e : edges_) {
    if (static_cast<int>(e.size()) != d) return false;
  }
  return true;
}

Graph Hypergraph::PrimalGraph() const {
  Graph g(n_);
  for (const auto& e : edges_) {
    for (std::size_t i = 0; i < e.size(); ++i) {
      for (std::size_t j = i + 1; j < e.size(); ++j) {
        g.AddEdge(e[i], e[j]);
      }
    }
  }
  return g;
}

bool Hypergraph::CoversAllVertices() const {
  std::vector<bool> covered(n_, false);
  for (const auto& e : edges_) {
    for (int v : e) covered[v] = true;
  }
  return std::all_of(covered.begin(), covered.end(), [](bool b) { return b; });
}

std::optional<FractionalEdgeCover> FractionalEdgeCoverNumber(
    const Hypergraph& h) {
  if (!h.CoversAllVertices()) return std::nullopt;
  // min sum_e x_e  s.t.  for each vertex v: sum_{e contains v} x_e >= 1.
  util::LpProblem lp;
  lp.num_vars = h.num_edges();
  lp.objective.assign(lp.num_vars, util::Fraction(1));
  for (int v = 0; v < h.num_vertices(); ++v) {
    std::vector<util::Fraction> row(lp.num_vars, util::Fraction(0));
    bool any = false;
    for (int e : h.EdgesContaining(v)) {
      row[e] = util::Fraction(1);
      any = true;
    }
    if (!any) return std::nullopt;
    lp.AddRow(std::move(row), util::LpProblem::Sense::kGe, util::Fraction(1));
  }
  util::LpSolution sol = util::SolveLp(lp);
  if (sol.status != util::LpSolution::Status::kOptimal) return std::nullopt;
  return FractionalEdgeCover{std::move(sol.x), sol.objective};
}

namespace {

void IntegralCoverSearch(const Hypergraph& h, std::vector<bool>& covered,
                         int used, int* best) {
  if (used >= *best) return;
  int v = -1;
  for (int i = 0; i < h.num_vertices(); ++i) {
    if (!covered[i]) {
      v = i;
      break;
    }
  }
  if (v < 0) {
    *best = used;
    return;
  }
  for (int e : h.EdgesContaining(v)) {
    std::vector<int> newly;
    for (int w : h.Edge(e)) {
      if (!covered[w]) {
        covered[w] = true;
        newly.push_back(w);
      }
    }
    IntegralCoverSearch(h, covered, used + 1, best);
    for (int w : newly) covered[w] = false;
  }
}

}  // namespace

std::optional<int> IntegralEdgeCoverNumber(const Hypergraph& h) {
  if (!h.CoversAllVertices()) return std::nullopt;
  std::vector<bool> covered(h.num_vertices(), false);
  int best = h.num_edges() + 1;
  IntegralCoverSearch(h, covered, 0, &best);
  return best;
}

bool IsAlphaAcyclic(const Hypergraph& h, std::vector<int>* join_tree_parent) {
  const int m = h.num_edges();
  // Working copies: edges shrink as isolated vertices are removed.
  std::vector<std::set<int>> edges(m);
  for (int e = 0; e < m; ++e) {
    edges[e].insert(h.Edge(e).begin(), h.Edge(e).end());
  }
  std::vector<bool> alive(m, true);
  std::vector<int> parent(m, -1);

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: drop vertices that occur in exactly one live edge.
    std::vector<int> count(h.num_vertices(), 0);
    for (int e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (int v : edges[e]) ++count[v];
    }
    for (int e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (auto it = edges[e].begin(); it != edges[e].end();) {
        if (count[*it] == 1) {
          it = edges[e].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Rule 2: drop an edge contained in another live edge (its absorber
    // becomes its join-tree parent). Empty edges hang off any survivor.
    for (int e = 0; e < m && !changed; ++e) {
      if (!alive[e]) continue;
      for (int f = 0; f < m; ++f) {
        if (f == e || !alive[f]) continue;
        if (std::includes(edges[f].begin(), edges[f].end(), edges[e].begin(),
                          edges[e].end())) {
          alive[e] = false;
          parent[e] = f;
          changed = true;
          break;
        }
      }
    }
  }

  int live = 0;
  for (int e = 0; e < m; ++e) {
    if (alive[e]) ++live;
  }
  // Acyclic iff the reduction leaves at most one edge (which must be the
  // root). With duplicate-free containment handled by rule 2, >1 survivor
  // means a genuine cycle.
  bool acyclic = live <= 1;
  if (acyclic && join_tree_parent != nullptr) {
    // Path-compress parents so each points at a live root... parents form a
    // forest already; just export.
    *join_tree_parent = parent;
  }
  return acyclic;
}

Hypergraph RandomUniformHypergraph(int n, int d, double p, util::Rng* rng) {
  Hypergraph h(n);
  std::vector<int> pick(d);
  // Iterate all d-subsets of [n].
  std::vector<int> idx(d);
  for (int i = 0; i < d; ++i) idx[i] = i;
  if (d > n) return h;
  while (true) {
    if (rng->NextBool(p)) h.AddEdge(idx);
    int i = d - 1;
    while (i >= 0 && idx[i] == n - d + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
  }
  return h;
}

bool InducesHyperclique(const Hypergraph& h, const std::vector<int>& s,
                        int d) {
  std::set<std::vector<int>> present(h.Edges().begin(), h.Edges().end());
  int k = static_cast<int>(s.size());
  if (k < d) return false;
  std::vector<int> sorted = s;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> idx(d);
  for (int i = 0; i < d; ++i) idx[i] = i;
  while (true) {
    std::vector<int> edge(d);
    for (int i = 0; i < d; ++i) edge[i] = sorted[idx[i]];
    if (present.find(edge) == present.end()) return false;
    int i = d - 1;
    while (i >= 0 && idx[i] == k - d + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
  }
  return true;
}

}  // namespace qc::graph
