#ifndef QC_GRAPH_TRIANGLES_H_
#define QC_GRAPH_TRIANGLES_H_

#include <array>
#include <cstdint>
#include <optional>

#include "graph/graph.h"

namespace qc::util {
class Budget;
}  // namespace qc::util

namespace qc::graph {

/// Per-edge enumeration with a degree ordering and word-parallel
/// neighbourhood intersection: O(m^{3/2} * n/64)-ish but very fast in
/// practice. Returns a triangle (sorted) or nullopt.
std::optional<std::array<int, 3>> FindTriangleEnumeration(const Graph& g);

/// The same degree-ordered enumeration with scalar sorted-list merging —
/// the classical O(m^{3/2}) combinatorial baseline, with no word
/// parallelism. This is the "plain enumeration" that the AYZ split and the
/// MM-based detectors are measured against in experiment E9.
std::optional<std::array<int, 3>> FindTriangleEnumerationScalar(
    const Graph& g);

/// Detection via Boolean matrix multiplication: a triangle exists iff
/// (A*A) AND A is nonzero (Section 8, "the triangle conjecture" discussion).
///
/// `budget` (optional) is polled inside the matrix product and once per row
/// of the scan, so a deadline or cancel interrupts the O(n^3/64) work
/// promptly. On a trip the function returns nullopt with the search
/// incomplete — callers must check budget->Stopped() before treating
/// nullopt as "triangle-free".
std::optional<std::array<int, 3>> FindTriangleMatrix(
    const Graph& g, util::Budget* budget = nullptr);

/// Alon–Yuster–Zwick sparse detection: vertices of degree > `delta` are
/// "heavy" and handled by matrix multiplication on the heavy-induced
/// subgraph; triangles with a light vertex are found by scanning each light
/// vertex's neighbour pairs. delta <= 0 picks max(1, sqrt(m))
/// automatically (m == 0 returns nullopt before any classification).
///
/// Boundary contract, shared by both phases through one predicate: a vertex
/// is heavy iff Degree(v) > delta, so Degree(v) == delta vertices are
/// always light and exactly one phase owns every triangle. `budget` is
/// polled in the light scan and threaded through the heavy-phase MM; on a
/// trip the result is nullopt with the search incomplete (check
/// budget->Stopped()).
std::optional<std::array<int, 3>> FindTriangleAyz(const Graph& g,
                                                  int delta = 0,
                                                  util::Budget* budget =
                                                      nullptr);

/// Exact triangle count via word-parallel neighbourhood intersection.
/// `budget` (optional) is polled per vertex/edge; on a trip the returned
/// count is a partial undercount — check budget->Stopped().
std::uint64_t CountTriangles(const Graph& g, util::Budget* budget = nullptr);

/// Exact triangle count by scalar sorted-list merging over forward
/// adjacency — the classical O(m^{3/2}) combinatorial counter, no word
/// parallelism (the baseline of experiment E9).
std::uint64_t CountTrianglesScalar(const Graph& g);

}  // namespace qc::graph

#endif  // QC_GRAPH_TRIANGLES_H_
