#ifndef QC_GRAPH_HYPERGRAPH_H_
#define QC_GRAPH_HYPERGRAPH_H_

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/fraction.h"
#include "util/rng.h"

namespace qc::graph {

/// Hypergraph on vertices {0, ..., n-1}; each edge is a sorted set of
/// vertices. This is the query hypergraph of Section 3 of the paper: vertices
/// are attributes/variables, edges are relation scopes/constraint scopes.
class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(int n) : n_(n) {}

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds an edge (duplicates and empty edges allowed; vertices are sorted
  /// and deduplicated within the edge). Returns the edge index.
  int AddEdge(std::vector<int> vertices);

  const std::vector<int>& Edge(int e) const { return edges_[e]; }
  const std::vector<std::vector<int>>& Edges() const { return edges_; }

  /// Edge indices containing vertex v.
  std::vector<int> EdgesContaining(int v) const;

  /// True if every edge has exactly d vertices.
  bool IsUniform(int d) const;

  /// Primal (Gaifman) graph: vertices adjacent iff they share an edge.
  Graph PrimalGraph() const;

  /// True if every vertex is in at least one edge (a precondition for a
  /// fractional edge cover to exist).
  bool CoversAllVertices() const;

 private:
  int n_ = 0;
  std::vector<std::vector<int>> edges_;
};

/// A fractional edge cover: weight per edge, plus the total weight.
struct FractionalEdgeCover {
  std::vector<util::Fraction> weight;  ///< One per hyperedge.
  util::Fraction total;                ///< rho* when optimal.
};

/// Computes the fractional edge cover number rho*(H) of Section 3 exactly,
/// via the rational simplex. Returns nullopt if some vertex is uncovered
/// (the LP is infeasible).
std::optional<FractionalEdgeCover> FractionalEdgeCoverNumber(
    const Hypergraph& h);

/// Minimum *integral* edge cover via branch and bound (small hypergraphs
/// only); useful to contrast rho* with its integral counterpart.
std::optional<int> IntegralEdgeCoverNumber(const Hypergraph& h);

/// GYO (Graham–Yu–Ozsoyoglu) test for alpha-acyclicity. If acyclic and
/// `join_tree_parent` is non-null, writes a join tree: parent edge index per
/// edge, -1 at the root (edges eliminated by containment get their absorber
/// as parent).
bool IsAlphaAcyclic(const Hypergraph& h,
                    std::vector<int>* join_tree_parent = nullptr);

/// Random d-uniform hypergraph where each of the C(n, d) possible edges is
/// present independently with probability p.
Hypergraph RandomUniformHypergraph(int n, int d, double p, util::Rng* rng);

/// k-hyperclique test: does `s` induce all C(|s|, d) edges of a d-uniform
/// hypergraph? (Section 8, the d-uniform hyperclique conjecture.)
bool InducesHyperclique(const Hypergraph& h, const std::vector<int>& s, int d);

}  // namespace qc::graph

#endif  // QC_GRAPH_HYPERGRAPH_H_
