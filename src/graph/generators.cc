#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

namespace qc::graph {

Graph RandomGnp(int n, double p, util::Rng* rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->NextBool(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph RandomGnm(int n, int m, util::Rng* rng) {
  Graph g(n);
  long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  if (m > max_edges) std::abort();
  while (g.num_edges() < m) {
    int u = static_cast<int>(rng->NextBounded(n));
    int v = static_cast<int>(rng->NextBounded(n));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

Graph Path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph Cycle(int n) {
  Graph g = Path(n);
  if (n >= 3) g.AddEdge(n - 1, 0);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph CompleteBipartite(int a, int b) {
  Graph g(a + b);
  for (int u = 0; u < a; ++u) {
    for (int v = 0; v < b; ++v) g.AddEdge(u, a + v);
  }
  return g;
}

Graph Star(int leaves) {
  Graph g(leaves + 1);
  for (int v = 1; v <= leaves; ++v) g.AddEdge(0, v);
  return g;
}

Graph Grid(int rows, int cols) {
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph RandomTree(int n, util::Rng* rng) {
  Graph g(n);
  if (n <= 1) return g;
  if (n == 2) {
    g.AddEdge(0, 1);
    return g;
  }
  // Decode a random Prüfer sequence.
  std::vector<int> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<int>(rng->NextBounded(n));
  std::vector<int> deg(n, 1);
  for (int x : prufer) ++deg[x];
  std::set<int> leaves;
  for (int v = 0; v < n; ++v) {
    if (deg[v] == 1) leaves.insert(v);
  }
  for (int x : prufer) {
    int leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    g.AddEdge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  int a = *leaves.begin();
  int b = *std::next(leaves.begin());
  g.AddEdge(a, b);
  return g;
}

Graph RandomKTree(int n, int k, util::Rng* rng) {
  if (n < k + 1) std::abort();
  Graph g = Complete(k + 1);
  Graph out(n);
  for (auto [u, v] : g.Edges()) out.AddEdge(u, v);
  // Track the k-cliques available for attachment.
  std::vector<std::vector<int>> cliques;
  for (int skip = 0; skip <= k; ++skip) {
    std::vector<int> c;
    for (int v = 0; v <= k; ++v) {
      if (v != skip) c.push_back(v);
    }
    cliques.push_back(c);
  }
  for (int v = k + 1; v < n; ++v) {
    // Copy: push_back below may reallocate `cliques`.
    const std::vector<int> base = cliques[rng->NextBounded(cliques.size())];
    for (int u : base) out.AddEdge(v, u);
    // New k-cliques: base with one vertex replaced by v.
    for (std::size_t i = 0; i < base.size(); ++i) {
      std::vector<int> c = base;
      c[i] = v;
      std::sort(c.begin(), c.end());
      cliques.push_back(std::move(c));
    }
  }
  return out;
}

Graph RandomPartialKTree(int n, int k, double keep, util::Rng* rng) {
  Graph full = RandomKTree(n, k, rng);
  Graph g(n);
  for (auto [u, v] : full.Edges()) {
    if (rng->NextBool(keep)) g.AddEdge(u, v);
  }
  return g;
}

Graph PlantedClique(int n, double p, int k, util::Rng* rng,
                    std::vector<int>* planted) {
  Graph g = RandomGnp(n, p, rng);
  std::vector<int> verts = rng->Sample(n, k);
  std::sort(verts.begin(), verts.end());
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (std::size_t j = i + 1; j < verts.size(); ++j) {
      g.AddEdge(verts[i], verts[j]);
    }
  }
  if (planted != nullptr) *planted = verts;
  return g;
}

Graph SpecialGraph(int k) {
  Graph clique = Complete(k);
  long long path_len = 1LL << k;
  Graph path = Path(static_cast<int>(path_len));
  return clique.DisjointUnion(path);
}

Graph SkewedGraph(int n, int core_size, double p_core, int attach,
                  util::Rng* rng) {
  Graph g(n);
  for (int u = 0; u < core_size; ++u) {
    for (int v = u + 1; v < core_size; ++v) {
      if (rng->NextBool(p_core)) g.AddEdge(u, v);
    }
  }
  for (int v = core_size; v < n; ++v) {
    for (int t = 0; t < attach; ++t) {
      // Prefer the core half the time; otherwise any earlier vertex.
      int u = rng->NextBool(0.5)
                  ? static_cast<int>(rng->NextBounded(core_size))
                  : static_cast<int>(rng->NextBounded(v));
      g.AddEdge(v, u);
    }
  }
  return g;
}

Graph ZipfGraph(int n, int m, double exponent, util::Rng* rng) {
  Graph g(n);
  if (n < 2 || m <= 0) return g;
  // Cumulative Zipf weights over vertex ids; endpoint sampling by binary
  // search in the CDF. Vertex 0 is the heaviest hub.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (int v = 0; v < n; ++v) {
    total += 1.0 / std::pow(static_cast<double>(v + 1), exponent);
    cdf[v] = total;
  }
  auto draw = [&]() {
    const double x = rng->NextDouble() * total;
    return static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
  };
  long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  if (m > max_edges) m = static_cast<int>(max_edges);
  // Rejection loop; AddEdge dedups, so count via num_edges. Bounded retries
  // guard the near-complete corner where fresh pairs get rare.
  long long attempts = 0;
  const long long attempt_cap = 64LL * m + 1024;
  while (g.num_edges() < m && attempts < attempt_cap) {
    ++attempts;
    const int u = draw();
    const int v = draw();
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

Graph HubGraph(int n, int hubs, int m_periphery, util::Rng* rng) {
  Graph g(n);
  if (hubs > n) hubs = n;
  for (int h = 0; h < hubs; ++h) {
    for (int v = h + 1; v < n; ++v) g.AddEdge(h, v);
  }
  const int periphery = n - hubs;
  long long max_extra = static_cast<long long>(periphery) * (periphery - 1) / 2;
  if (m_periphery > max_extra) m_periphery = static_cast<int>(max_extra);
  long long before = g.num_edges();
  while (g.num_edges() - before < m_periphery) {
    const int u = hubs + static_cast<int>(rng->NextBounded(periphery));
    const int v = hubs + static_cast<int>(rng->NextBounded(periphery));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

}  // namespace qc::graph
