#ifndef QC_GRAPH_GRAPH_H_
#define QC_GRAPH_GRAPH_H_

#include <utility>
#include <vector>

#include "util/bitset.h"

namespace qc::graph {

/// Simple undirected graph on vertices {0, ..., n-1}.
///
/// Keeps both an adjacency bitset per vertex (for word-parallel neighbourhood
/// intersection, the workhorse of the clique/triangle algorithms) and an edge
/// list (for iteration). Self-loops and parallel edges are not represented:
/// AddEdge is idempotent and ignores loops.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds undirected edge {u, v}; ignores loops and duplicates.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const { return adj_[u].Test(v); }
  int Degree(int v) const { return adj_[v].Count(); }

  /// Neighbourhood of v as a bitset.
  const util::Bitset& Neighbors(int v) const { return adj_[v]; }
  /// Neighbourhood of v as a sorted vertex list.
  std::vector<int> NeighborList(int v) const { return adj_[v].ToVector(); }

  /// All edges as (u, v) pairs with u < v, in insertion order.
  const std::vector<std::pair<int, int>>& Edges() const { return edges_; }

  /// Graph induced on `vertices`; vertex i of the result is vertices[i].
  Graph InducedSubgraph(const std::vector<int>& vertices) const;

  /// Complement graph (no loops).
  Graph Complement() const;

  /// Disjoint union: vertices of `other` are shifted by num_vertices().
  Graph DisjointUnion(const Graph& other) const;

  /// Connected components, each a sorted vertex list.
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// True if the graph has no cycle.
  bool IsForest() const;

  /// Degeneracy ordering (repeatedly remove a minimum-degree vertex) and the
  /// degeneracy value.
  std::pair<std::vector<int>, int> DegeneracyOrder() const;

 private:
  int n_ = 0;
  std::vector<util::Bitset> adj_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace qc::graph

#endif  // QC_GRAPH_GRAPH_H_
