#include "graph/domination.h"

namespace qc::graph {

namespace {

util::Bitset ClosedNeighborhood(const Graph& g, int v) {
  util::Bitset nb = g.Neighbors(v);
  nb.Set(v);
  return nb;
}

bool SubsetSearch(const Graph& g, int k, int first, util::Bitset covered,
                  std::vector<int>* chosen, std::uint64_t* nodes) {
  if (covered.Count() == g.num_vertices()) return true;
  if (static_cast<int>(chosen->size()) == k) return false;
  for (int v = first; v < g.num_vertices(); ++v) {
    ++*nodes;
    util::Bitset next = covered;
    next |= ClosedNeighborhood(g, v);
    if (next == covered) continue;  // v adds nothing: prune the no-op.
    chosen->push_back(v);
    if (SubsetSearch(g, k, v + 1, next, chosen, nodes)) return true;
    chosen->pop_back();
  }
  return false;
}

void BranchAndBound(const Graph& g, util::Bitset covered,
                    std::vector<int>* current, std::vector<int>* best) {
  if (covered.Count() == g.num_vertices()) {
    if (current->size() < best->size()) *best = *current;
    return;
  }
  if (current->size() + 1 >= best->size()) return;
  // Branch on the first uncovered vertex: some member of its closed
  // neighbourhood must be chosen.
  int u = -1;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!covered.Test(v)) {
      u = v;
      break;
    }
  }
  for (int v : ClosedNeighborhood(g, u).ToVector()) {
    util::Bitset next = covered;
    next |= ClosedNeighborhood(g, v);
    current->push_back(v);
    BranchAndBound(g, next, current, best);
    current->pop_back();
  }
}

}  // namespace

bool IsDominatingSet(const Graph& g, const std::vector<int>& s) {
  util::Bitset covered(g.num_vertices());
  for (int v : s) covered |= ClosedNeighborhood(g, v);
  return covered.Count() == g.num_vertices();
}

std::optional<std::vector<int>> FindDominatingSetOfSize(
    const Graph& g, int k, std::uint64_t* nodes_examined) {
  if (g.num_vertices() == 0) return std::vector<int>{};
  std::vector<int> chosen;
  util::Bitset covered(g.num_vertices());
  std::uint64_t local = 0;
  std::uint64_t* nodes = nodes_examined != nullptr ? nodes_examined : &local;
  *nodes = 0;
  if (SubsetSearch(g, k, 0, covered, &chosen, nodes)) return chosen;
  return std::nullopt;
}

std::vector<int> MinDominatingSet(const Graph& g) {
  std::vector<int> best(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) best[v] = v;
  std::vector<int> current;
  util::Bitset covered(g.num_vertices());
  BranchAndBound(g, covered, &current, &best);
  return best;
}

std::vector<int> GreedyDominatingSet(const Graph& g) {
  util::Bitset covered(g.num_vertices());
  std::vector<int> out;
  while (covered.Count() < g.num_vertices()) {
    int best = -1, best_gain = -1;
    for (int v = 0; v < g.num_vertices(); ++v) {
      util::Bitset t = ClosedNeighborhood(g, v);
      int gain = t.Count() - t.IntersectCount(covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    covered |= ClosedNeighborhood(g, best);
    out.push_back(best);
  }
  return out;
}

}  // namespace qc::graph
