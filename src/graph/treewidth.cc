#include "graph/treewidth.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <set>

#include "util/threadpool.h"
#include "util/trace.h"

namespace qc::graph {

int TreeDecomposition::Width() const {
  int w = -1;
  for (const auto& b : bags) w = std::max(w, static_cast<int>(b.size()) - 1);
  return w;
}

std::optional<std::string> TreeDecomposition::Validate(const Graph& g) const {
  const int nb = static_cast<int>(bags.size());
  if (nb == 0) {
    return g.num_vertices() == 0
               ? std::nullopt
               : std::optional<std::string>("no bags for nonempty graph");
  }
  // Tree shape: connected with nb-1 edges.
  if (static_cast<int>(edges.size()) != nb - 1) {
    return "edge count is not (#bags - 1)";
  }
  std::vector<std::vector<int>> adj(nb);
  for (auto [a, b] : edges) {
    if (a < 0 || b < 0 || a >= nb || b >= nb) return "edge out of range";
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(nb, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 0;
  while (!stack.empty()) {
    int t = stack.back();
    stack.pop_back();
    ++visited;
    for (int u : adj[t]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  if (visited != nb) return "tree is not connected";

  // Condition 1: vertex coverage.
  std::vector<bool> covered(g.num_vertices(), false);
  for (const auto& b : bags) {
    for (int v : b) {
      if (v < 0 || v >= g.num_vertices()) return "bag vertex out of range";
      covered[v] = true;
    }
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!covered[v]) return "vertex " + std::to_string(v) + " not covered";
  }
  // Condition 2: edge coverage.
  for (auto [u, v] : g.Edges()) {
    bool ok = false;
    for (const auto& b : bags) {
      if (std::binary_search(b.begin(), b.end(), u) &&
          std::binary_search(b.begin(), b.end(), v)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return "edge {" + std::to_string(u) + "," + std::to_string(v) +
             "} not covered";
    }
  }
  // Condition 3: for each vertex, the bags containing it induce a subtree.
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::vector<int> holders;
    for (int t = 0; t < nb; ++t) {
      if (std::binary_search(bags[t].begin(), bags[t].end(), v)) {
        holders.push_back(t);
      }
    }
    if (holders.empty()) continue;
    std::vector<bool> in_h(nb, false);
    for (int t : holders) in_h[t] = true;
    std::vector<bool> vis(nb, false);
    std::vector<int> st = {holders[0]};
    vis[holders[0]] = true;
    int reached = 0;
    while (!st.empty()) {
      int t = st.back();
      st.pop_back();
      ++reached;
      for (int u : adj[t]) {
        if (in_h[u] && !vis[u]) {
          vis[u] = true;
          st.push_back(u);
        }
      }
    }
    if (reached != static_cast<int>(holders.size())) {
      return "bags containing vertex " + std::to_string(v) +
             " are not connected";
    }
  }
  return std::nullopt;
}

int EliminationOrderWidth(const Graph& g, const std::vector<int>& order) {
  const int n = g.num_vertices();
  std::vector<util::Bitset> adj(n);
  for (int v = 0; v < n; ++v) adj[v] = g.Neighbors(v);
  util::Bitset alive(n);
  for (int v = 0; v < n; ++v) alive.Set(v);
  int width = 0;
  for (int v : order) {
    util::Bitset nb = adj[v];
    nb &= alive;
    nb.Reset(v);
    width = std::max(width, nb.Count());
    // Make the live neighbourhood a clique (fill-in).
    std::vector<int> ns = nb.ToVector();
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        adj[ns[i]].Set(ns[j]);
        adj[ns[j]].Set(ns[i]);
      }
    }
    alive.Reset(v);
  }
  return width;
}

TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const std::vector<int>& order) {
  const int n = g.num_vertices();
  TreeDecomposition td;
  if (n == 0) return td;
  std::vector<util::Bitset> adj(n);
  for (int v = 0; v < n; ++v) adj[v] = g.Neighbors(v);
  util::Bitset alive(n);
  for (int v = 0; v < n; ++v) alive.Set(v);
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<int> bag_of(n);  // Bag index created for each vertex.
  td.bags.resize(n);
  for (int i = 0; i < n; ++i) {
    int v = order[i];
    util::Bitset nb = adj[v];
    nb &= alive;
    nb.Reset(v);
    std::vector<int> ns = nb.ToVector();
    std::vector<int> bag = ns;
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    td.bags[i] = bag;
    bag_of[v] = i;
    for (std::size_t a = 0; a < ns.size(); ++a) {
      for (std::size_t b = a + 1; b < ns.size(); ++b) {
        adj[ns[a]].Set(ns[b]);
        adj[ns[b]].Set(ns[a]);
      }
    }
    alive.Reset(v);
  }
  // Attach bag i to the bag of the earliest-eliminated live neighbour of
  // order[i]; if none (last vertex of a component), attach to next bag.
  for (int i = 0; i < n; ++i) {
    int v = order[i];
    int best = -1;
    for (int u : td.bags[i]) {
      if (u == v) continue;
      if (best < 0 || position[u] < position[best]) best = u;
    }
    if (best >= 0) {
      td.edges.emplace_back(i, bag_of[best]);
    } else if (i + 1 < n) {
      td.edges.emplace_back(i, i + 1);
    }
  }
  return td;
}

std::vector<int> MinDegreeOrder(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<util::Bitset> adj(n);
  for (int v = 0; v < n; ++v) adj[v] = g.Neighbors(v);
  util::Bitset alive(n);
  for (int v = 0; v < n; ++v) alive.Set(v);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1, best_deg = std::numeric_limits<int>::max();
    for (int v = alive.NextSetBit(0); v >= 0; v = alive.NextSetBit(v + 1)) {
      int d = adj[v].IntersectCount(alive) - 1;
      if (d < best_deg) {
        best_deg = d;
        best = v;
      }
    }
    util::Bitset nb = adj[best];
    nb &= alive;
    nb.Reset(best);
    std::vector<int> ns = nb.ToVector();
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        adj[ns[i]].Set(ns[j]);
        adj[ns[j]].Set(ns[i]);
      }
    }
    alive.Reset(best);
    order.push_back(best);
  }
  return order;
}

std::vector<int> MinFillOrder(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<util::Bitset> adj(n);
  for (int v = 0; v < n; ++v) adj[v] = g.Neighbors(v);
  util::Bitset alive(n);
  for (int v = 0; v < n; ++v) alive.Set(v);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long long best_fill = std::numeric_limits<long long>::max();
    for (int v = alive.NextSetBit(0); v >= 0; v = alive.NextSetBit(v + 1)) {
      util::Bitset nb = adj[v];
      nb &= alive;
      nb.Reset(v);
      std::vector<int> ns = nb.ToVector();
      long long fill = 0;
      for (std::size_t i = 0; i < ns.size(); ++i) {
        for (std::size_t j = i + 1; j < ns.size(); ++j) {
          if (!adj[ns[i]].Test(ns[j])) ++fill;
        }
      }
      if (fill < best_fill) {
        best_fill = fill;
        best = v;
      }
    }
    util::Bitset nb = adj[best];
    nb &= alive;
    nb.Reset(best);
    std::vector<int> ns = nb.ToVector();
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        adj[ns[i]].Set(ns[j]);
        adj[ns[j]].Set(ns[i]);
      }
    }
    alive.Reset(best);
    order.push_back(best);
  }
  return order;
}

TreewidthUpperBound HeuristicTreewidth(const Graph& g) {
  std::vector<int> o1 = MinDegreeOrder(g);
  std::vector<int> o2 = MinFillOrder(g);
  int w1 = EliminationOrderWidth(g, o1);
  int w2 = EliminationOrderWidth(g, o2);
  const std::vector<int>& best = (w2 < w1) ? o2 : o1;
  return TreewidthUpperBound{std::min(w1, w2),
                             DecompositionFromOrder(g, best)};
}

int TreewidthLowerBound(const Graph& g) { return g.DegeneracyOrder().second; }

namespace {

/// Branch-and-bound state: live adjacency (with fill edges) as bitsets.
class TwBranchState {
 public:
  TwBranchState(const Graph& g)
      : n_(g.num_vertices()), adj_(n_), alive_(n_) {
    for (int v = 0; v < n_; ++v) adj_[v] = g.Neighbors(v);
    for (int v = 0; v < n_; ++v) alive_.Set(v);
  }

  int LiveDegree(int v) const { return adj_[v].IntersectCount(alive_); }

  bool IsSimplicial(int v) const {
    util::Bitset nb = adj_[v];
    nb &= alive_;
    nb.Reset(v);
    std::vector<int> ns = nb.ToVector();
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        if (!adj_[ns[i]].Test(ns[j])) return false;
      }
    }
    return true;
  }

  /// Eliminates v; returns the fill edges added so the caller can undo.
  std::vector<std::pair<int, int>> Eliminate(int v) {
    util::Bitset nb = adj_[v];
    nb &= alive_;
    nb.Reset(v);
    std::vector<int> ns = nb.ToVector();
    std::vector<std::pair<int, int>> fill;
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = i + 1; j < ns.size(); ++j) {
        if (!adj_[ns[i]].Test(ns[j])) {
          adj_[ns[i]].Set(ns[j]);
          adj_[ns[j]].Set(ns[i]);
          fill.emplace_back(ns[i], ns[j]);
        }
      }
    }
    alive_.Reset(v);
    return fill;
  }

  void Undo(int v, const std::vector<std::pair<int, int>>& fill) {
    alive_.Set(v);
    for (auto [a, b] : fill) {
      adj_[a].Reset(b);
      adj_[b].Reset(a);
    }
  }

  int live_count() const { return alive_.Count(); }

  /// Degeneracy of the live residual graph — a treewidth lower bound.
  int ResidualLowerBound() const {
    std::vector<int> deg(n_, 0);
    util::Bitset alive = alive_;
    for (int v = alive.NextSetBit(0); v >= 0; v = alive.NextSetBit(v + 1)) {
      deg[v] = adj_[v].IntersectCount(alive);
    }
    int bound = 0;
    util::Bitset left = alive;
    int remaining = left.Count();
    while (remaining > 0) {
      int best = -1;
      for (int v = left.NextSetBit(0); v >= 0; v = left.NextSetBit(v + 1)) {
        if (best < 0 || deg[v] < deg[best]) best = v;
      }
      bound = std::max(bound, deg[best]);
      left.Reset(best);
      --remaining;
      util::Bitset nb = adj_[best];
      nb &= left;
      for (int u = nb.NextSetBit(0); u >= 0; u = nb.NextSetBit(u + 1)) {
        --deg[u];
      }
    }
    return bound;
  }

  const util::Bitset& alive() const { return alive_; }

 private:
  int n_;
  std::vector<util::Bitset> adj_;
  util::Bitset alive_;
};

void TwBranch(TwBranchState& state, int width_so_far, int* best) {
  if (width_so_far >= *best) return;
  if (state.live_count() <= 1) {
    *best = width_so_far;
    return;
  }
  // Safe rule: a simplicial vertex can always be eliminated first.
  for (int v = state.alive().NextSetBit(0); v >= 0;
       v = state.alive().NextSetBit(v + 1)) {
    if (state.IsSimplicial(v)) {
      int deg = state.LiveDegree(v);
      auto fill = state.Eliminate(v);
      TwBranch(state, std::max(width_so_far, deg), best);
      state.Undo(v, fill);
      return;
    }
  }
  if (std::max(width_so_far, state.ResidualLowerBound()) >= *best) return;
  // Branch on which live vertex to eliminate next, cheapest first.
  std::vector<int> candidates = state.alive().ToVector();
  std::sort(candidates.begin(), candidates.end(), [&state](int a, int b) {
    return state.LiveDegree(a) < state.LiveDegree(b);
  });
  for (int v : candidates) {
    int deg = state.LiveDegree(v);
    if (std::max(width_so_far, deg) >= *best) continue;
    auto fill = state.Eliminate(v);
    TwBranch(state, std::max(width_so_far, deg), best);
    state.Undo(v, fill);
  }
}

}  // namespace

int BranchAndBoundTreewidth(const Graph& g) {
  if (g.num_vertices() == 0) return -1;
  int best = HeuristicTreewidth(g).width + 1;  // Exclusive upper bound.
  TwBranchState state(g);
  TwBranch(state, 0, &best);
  return best;
}

namespace {

/// Q(S, v): the vertices outside S+{v} adjacent to the component of v in
/// G[S + {v}] — the degree v would have when eliminated right after S.
int QValue(const std::vector<util::Bitset>& adj, std::uint32_t s_mask, int v,
           int n) {
  util::Bitset comp(n);
  comp.Set(v);
  util::Bitset frontier = comp;
  util::Bitset reach_nb(n);
  while (true) {
    util::Bitset nb(n);
    for (int u = frontier.NextSetBit(0); u >= 0;
         u = frontier.NextSetBit(u + 1)) {
      nb |= adj[u];
    }
    reach_nb |= nb;
    // Extend within S.
    util::Bitset next = nb;
    for (int u = 0; u < n; ++u) {
      if (!((s_mask >> u) & 1U)) next.Reset(u);
    }
    bool grew = false;
    for (int u = next.NextSetBit(0); u >= 0; u = next.NextSetBit(u + 1)) {
      if (!comp.Test(u)) {
        comp.Set(u);
        grew = true;
      } else {
        next.Reset(u);
      }
    }
    if (!grew) break;
    frontier = next;
  }
  int q = 0;
  for (int u = reach_nb.NextSetBit(0); u >= 0;
       u = reach_nb.NextSetBit(u + 1)) {
    if (u != v && !((s_mask >> u) & 1U)) ++q;
  }
  return q;
}

/// The elimination-ordering DP over one connected component, on a local
/// adjacency (ids 0..n-1).
struct ComponentDp {
  int width = 0;
  std::vector<int> order;  ///< Local elimination order.
  std::uint64_t states = 0;
  bool aborted = false;  ///< Budget tripped mid-DP; width/order meaningless.
};

ComponentDp SolveComponentDp(const std::vector<util::Bitset>& adj,
                             util::Budget* budget) {
  const int n = static_cast<int>(adj.size());
  ComponentDp result;
  const std::uint32_t full = (1U << n) - 1U;
  // f[S] = min over elimination prefixes equal to S of the max elimination
  // degree so far; int8 suffices since widths are < 28.
  std::vector<std::int8_t> f(static_cast<std::size_t>(full) + 1, -1);
  std::vector<std::int8_t> choice(static_cast<std::size_t>(full) + 1, -1);
  f[0] = 0;
  for (std::uint32_t s = 1; s <= full; ++s) {
    // Safe point: one subset per step keeps the poll off the inner QValue
    // loop while still bounding the drain to O(n) QValue calls.
    if (budget != nullptr && budget->ChargeWork(1)) {
      result.aborted = true;
      return result;
    }
    int best = std::numeric_limits<int>::max();
    int best_v = -1;
    for (int v = 0; v < n; ++v) {
      if (!((s >> v) & 1U)) continue;
      std::uint32_t prev = s & ~(1U << v);
      int q = QValue(adj, prev, v, n);
      ++result.states;
      int val = std::max(static_cast<int>(f[prev]), q);
      if (val < best) {
        best = val;
        best_v = v;
      }
    }
    f[s] = static_cast<std::int8_t>(best);
    choice[s] = static_cast<std::int8_t>(best_v);
  }

  // Recover the elimination order (choice[S] is eliminated *last* in S).
  result.order.resize(n);
  std::uint32_t s = full;
  for (int i = n - 1; i >= 0; --i) {
    int v = choice[s];
    result.order[i] = v;
    s &= ~(1U << v);
  }
  result.width = f[full];
  return result;
}

}  // namespace

ExactTreewidthResult ExactTreewidth(const Graph& g, int max_vertices,
                                    int threads, util::Budget* budget) {
  const int n = g.num_vertices();
  if (n == 0) return {-1, TreeDecomposition{}, {}, 0};
  static const std::uint32_t kExactSpan =
      util::Trace::InternName("treewidth.exact");
  util::ScopedSpan exact_span(kExactSpan);

  // Treewidth is the max over connected components; solving each component's
  // 2^{n_c} DP separately is exponentially cheaper than one 2^n DP and the
  // components are independent, so they parallelize with no shared state.
  std::vector<std::vector<int>> components = g.ConnectedComponents();
  for (const auto& comp : components) {
    if (static_cast<int>(comp.size()) > max_vertices ||
        static_cast<int>(comp.size()) > 28) {
      std::abort();  // The component DP needs 2^{n_c} bytes.
    }
  }

  // Components start out aborted: ParallelFor skips all chunks when the
  // budget is already tripped at entry, and a chunk that never runs must
  // not be mistaken for a solved (width 0, empty order) component.
  std::vector<ComponentDp> solved(components.size());
  for (ComponentDp& dp : solved) dp.aborted = true;
  auto solve_block = [&g, &components, &solved, budget](std::int64_t lo,
                                                        std::int64_t hi) {
    // Per-component span: the count equals the number of solved components
    // (deterministic — skipped chunks record nothing only on budget trips,
    // which also abort the run), independent of which worker ran it.
    static const std::uint32_t kComponentSpan =
        util::Trace::InternName("treewidth.exact.component");
    for (std::int64_t ci = lo; ci < hi; ++ci) {
      if (budget != nullptr && budget->Stopped()) return;
      util::ScopedSpan component_span(kComponentSpan);
      const std::vector<int>& comp = components[ci];
      const int nc = static_cast<int>(comp.size());
      std::vector<int> local_id(g.num_vertices(), -1);
      for (int i = 0; i < nc; ++i) local_id[comp[i]] = i;
      std::vector<util::Bitset> adj(nc, util::Bitset(nc));
      for (int i = 0; i < nc; ++i) {
        for (int u : g.NeighborList(comp[i])) {
          if (local_id[u] >= 0) adj[i].Set(local_id[u]);
        }
      }
      solved[ci] = SolveComponentDp(adj, budget);
    }
  };
  util::ThreadPool::Shared().ParallelFor(
      0, static_cast<std::int64_t>(components.size()), solve_block, threads,
      /*min_grain=*/1, budget);

  // Merge in component order: the concatenated elimination orders realize
  // max-over-components width, and the merge is deterministic regardless of
  // which worker solved which component.
  ExactTreewidthResult result;
  result.treewidth = 0;
  bool aborted = false;
  for (std::size_t ci = 0; ci < components.size(); ++ci) {
    aborted = aborted || solved[ci].aborted;
    result.treewidth = std::max(result.treewidth, solved[ci].width);
    result.dp_states += solved[ci].states;
    for (int local : solved[ci].order) {
      result.elimination_order.push_back(components[ci][local]);
    }
  }
  if (aborted) {
    // ParallelFor chunks that never started leave aborted=true even when the
    // budget tripped between them; status() reports the actual cause.
    result.treewidth = -1;
    result.elimination_order.clear();
    result.decomposition = TreeDecomposition{};
    result.status = budget != nullptr ? budget->status()
                                      : util::RunStatus::kBudgetExhausted;
    return result;
  }
  result.decomposition = DecompositionFromOrder(g, result.elimination_order);
  return result;
}

}  // namespace qc::graph
