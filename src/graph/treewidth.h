#ifndef QC_GRAPH_TREEWIDTH_H_
#define QC_GRAPH_TREEWIDTH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/budget.h"

namespace qc::graph {

/// A tree decomposition (Definition 4.1): a tree whose nodes carry bags of
/// vertices, covering all vertices and edges, with the connectedness
/// ("running intersection") property.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;       ///< Sorted vertex sets.
  std::vector<std::pair<int, int>> edges;   ///< Tree edges between bag ids.

  /// max |bag| - 1, or -1 for the empty decomposition.
  int Width() const;

  /// Checks all three conditions of Definition 4.1 against `g` plus that
  /// `edges` forms a tree. On failure returns an explanation.
  std::optional<std::string> Validate(const Graph& g) const;
};

/// Exact treewidth via the O*(2^n) elimination-ordering dynamic program
/// (Bodlaender et al.). Also produces an optimal tree decomposition.
/// The DP runs per connected component (treewidth is the max over
/// components), so only each *component* may have at most `max_vertices`
/// vertices (memory is 2^{n_c} bytes); aborts otherwise. With `threads > 1`
/// the components are solved in parallel and merged in component order, so
/// the result is bit-identical to the serial run.
/// On a tripped budget `status` records the cause, `treewidth` is -1 and
/// the decomposition/order are empty — there is no meaningful partial
/// answer for an exact width, so the caller falls back to a heuristic.
struct ExactTreewidthResult {
  int treewidth;
  TreeDecomposition decomposition;
  std::vector<int> elimination_order;
  std::uint64_t dp_states = 0;  ///< (S, v) pairs evaluated by the DP.
  util::RunStatus status = util::RunStatus::kCompleted;
};
ExactTreewidthResult ExactTreewidth(const Graph& g, int max_vertices = 24,
                                    int threads = 0,
                                    util::Budget* budget = nullptr);

/// Width of the decomposition induced by a given elimination order
/// (max over v of the degree of v at its elimination time, after fill-in).
int EliminationOrderWidth(const Graph& g, const std::vector<int>& order);

/// Tree decomposition induced by an elimination order.
TreeDecomposition DecompositionFromOrder(const Graph& g,
                                         const std::vector<int>& order);

/// Greedy minimum-degree elimination order.
std::vector<int> MinDegreeOrder(const Graph& g);

/// Greedy minimum-fill-in elimination order.
std::vector<int> MinFillOrder(const Graph& g);

/// Upper bound: best of min-degree and min-fill.
struct TreewidthUpperBound {
  int width;
  TreeDecomposition decomposition;
};
TreewidthUpperBound HeuristicTreewidth(const Graph& g);

/// Lower bound on treewidth: graph degeneracy (every graph of treewidth k is
/// k-degenerate).
int TreewidthLowerBound(const Graph& g);

/// Exact treewidth by branch and bound over elimination orders (QuickBB
/// style): starts from the heuristic upper bound, eliminates simplicial
/// vertices eagerly (always safe), and prunes with the degeneracy lower
/// bound of the residual graph. Complements the 2^n subset DP: no 2^n
/// memory, so it reaches somewhat larger sparse graphs, at the cost of a
/// worst-case exponential search.
int BranchAndBoundTreewidth(const Graph& g);

}  // namespace qc::graph

#endif  // QC_GRAPH_TREEWIDTH_H_
