#ifndef QC_GRAPH_GENERATORS_H_
#define QC_GRAPH_GENERATORS_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace qc::graph {

/// Erdős–Rényi G(n, p).
Graph RandomGnp(int n, double p, util::Rng* rng);

/// Random graph with exactly m distinct edges (m <= n(n-1)/2).
Graph RandomGnm(int n, int m, util::Rng* rng);

/// Path on n vertices (0-1-2-...).
Graph Path(int n);

/// Cycle on n >= 3 vertices.
Graph Cycle(int n);

/// Complete graph K_n.
Graph Complete(int n);

/// Complete bipartite graph K_{a,b}; side A is vertices [0, a).
Graph CompleteBipartite(int a, int b);

/// Star with one center (vertex 0) and `leaves` leaves.
Graph Star(int leaves);

/// rows x cols grid graph.
Graph Grid(int rows, int cols);

/// Uniformly random labelled tree on n vertices (Prüfer sequence).
Graph RandomTree(int n, util::Rng* rng);

/// Random k-tree on n >= k+1 vertices: start from K_{k+1}, then each new
/// vertex is attached to a random existing k-clique. Treewidth is exactly k.
Graph RandomKTree(int n, int k, util::Rng* rng);

/// Random partial k-tree: a random k-tree with each edge kept with
/// probability `keep`. Treewidth is at most k.
Graph RandomPartialKTree(int n, int k, double keep, util::Rng* rng);

/// G(n, p) with a clique planted on k random vertices. Returns the graph and
/// writes the planted vertices (sorted) to *planted if non-null.
Graph PlantedClique(int n, double p, int k, util::Rng* rng,
                    std::vector<int>* planted);

/// "Special" graph of Definition 4.3: disjoint union of K_k and a path on
/// 2^k vertices. Vertices [0, k) are the clique.
Graph SpecialGraph(int k);

/// Graph with a heavy-tailed degree profile: a small dense core of
/// `core_size` vertices (each core pair is an edge with probability p_core)
/// plus peripheral vertices attached to `attach` random core/earlier
/// vertices. Used for the sparse-triangle experiment (E9), where skewed
/// degrees are what the AYZ degree split exploits.
Graph SkewedGraph(int n, int core_size, double p_core, int attach,
                  util::Rng* rng);

/// Graph whose degree sequence follows a Zipf law: vertex v gets a target
/// degree proportional to 1/(v+1)^exponent scaled so the total is ~2m, and
/// edge endpoints are drawn from that distribution (multi-edges and loops
/// rejected). exponent ~1.0 is mildly skewed, >= 2.0 concentrates almost
/// all incidences on a handful of hubs — the skew axis of experiment E20.
Graph ZipfGraph(int n, int m, double exponent, util::Rng* rng);

/// `hubs` hub vertices adjacent to everything (including each other), plus
/// a sparse G(n, m_periphery) periphery. The extreme hub-degree instance:
/// every hub exceeds any sane degree threshold, so the hybrid planner's
/// heavy phase owns a dense quadratic core while the periphery stays light.
Graph HubGraph(int n, int hubs, int m_periphery, util::Rng* rng);

}  // namespace qc::graph

#endif  // QC_GRAPH_GENERATORS_H_
