#ifndef QC_GRAPH_HOMOMORPHISM_H_
#define QC_GRAPH_HOMOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// Searches for a homomorphism from H to G (Section 2.3): a map f with
/// f(u)f(v) an edge of G for every edge uv of H. Backtracking over H's
/// vertices in a connectivity-friendly order. Returns f or nullopt.
std::optional<std::vector<int>> FindHomomorphism(const Graph& h,
                                                 const Graph& g);

/// Number of homomorphisms from H to G.
std::uint64_t CountHomomorphisms(const Graph& h, const Graph& g);

/// List homomorphism (the LHOM problem of [33], cited in Section 7): a
/// homomorphism f from H to G with f(v) restricted to lists[v] for every
/// vertex of H. Plain homomorphism is the special case of full lists.
std::optional<std::vector<int>> FindListHomomorphism(
    const Graph& h, const Graph& g,
    const std::vector<std::vector<int>>& lists);

/// Subgraph isomorphism: an injective map from H into G taking H-edges to
/// G-edges; with `induced`, non-edges of H must also map to non-edges
/// (Section 2.3 introduces the partitioned variant below as the CSP-shaped
/// cousin of this standard problem).
std::optional<std::vector<int>> FindSubgraphIsomorphism(const Graph& h,
                                                        const Graph& g,
                                                        bool induced = false);

/// Partitioned subgraph isomorphism (Section 2.3): given H, G and a
/// partition of V(G) into |V(H)| classes (class_of[v] in [0, |V(H)|)), find
/// a subgraph of G with exactly one vertex per class that is isomorphic to H
/// under the class labelling. Returns, per H-vertex, the chosen G-vertex.
std::optional<std::vector<int>> FindPartitionedSubgraphIsomorphism(
    const Graph& h, const Graph& g, const std::vector<int>& class_of);

}  // namespace qc::graph

#endif  // QC_GRAPH_HOMOMORPHISM_H_
