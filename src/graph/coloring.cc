#include "graph/coloring.h"

#include <algorithm>

namespace qc::graph {

bool IsProperColoring(const Graph& g, const std::vector<int>& colors) {
  if (static_cast<int>(colors.size()) != g.num_vertices()) return false;
  for (auto [u, v] : g.Edges()) {
    if (colors[u] == colors[v]) return false;
  }
  return true;
}

namespace {

bool ColorSearch(const Graph& g, int k, std::vector<int>* colors) {
  // DSATUR: pick the uncoloured vertex with the most distinct neighbour
  // colours (ties: highest degree).
  const int n = g.num_vertices();
  int best = -1, best_sat = -1, best_deg = -1;
  for (int v = 0; v < n; ++v) {
    if ((*colors)[v] >= 0) continue;
    util::Bitset used(k);
    for (int u : g.NeighborList(v)) {
      if ((*colors)[u] >= 0) used.Set((*colors)[u]);
    }
    int sat = used.Count();
    int deg = g.Degree(v);
    if (sat > best_sat || (sat == best_sat && deg > best_deg)) {
      best = v;
      best_sat = sat;
      best_deg = deg;
    }
  }
  if (best < 0) return true;  // All coloured.
  util::Bitset used(k);
  for (int u : g.NeighborList(best)) {
    if ((*colors)[u] >= 0) used.Set((*colors)[u]);
  }
  for (int c = 0; c < k; ++c) {
    if (used.Test(c)) continue;
    (*colors)[best] = c;
    if (ColorSearch(g, k, colors)) return true;
    (*colors)[best] = -1;
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindKColoring(const Graph& g, int k) {
  if (k <= 0) {
    if (g.num_vertices() == 0) return std::vector<int>{};
    return std::nullopt;
  }
  std::vector<int> colors(g.num_vertices(), -1);
  if (ColorSearch(g, k, &colors)) return colors;
  return std::nullopt;
}

std::vector<int> GreedyColoring(const Graph& g,
                                const std::vector<int>& order) {
  std::vector<int> colors(g.num_vertices(), -1);
  for (int v : order) {
    std::vector<bool> used(g.num_vertices() + 1, false);
    for (int u : g.NeighborList(v)) {
      if (colors[u] >= 0) used[colors[u]] = true;
    }
    int c = 0;
    while (used[c]) ++c;
    colors[v] = c;
  }
  return colors;
}

int ChromaticNumber(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  for (int k = 1;; ++k) {
    if (FindKColoring(g, k)) return k;
  }
}

}  // namespace qc::graph
