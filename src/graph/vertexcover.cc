#include "graph/vertexcover.h"

#include <algorithm>

namespace qc::graph {

bool IsVertexCover(const Graph& g, const std::vector<int>& s) {
  util::Bitset in(g.num_vertices());
  for (int v : s) in.Set(v);
  for (auto [u, v] : g.Edges()) {
    if (!in.Test(u) && !in.Test(v)) return false;
  }
  return true;
}

namespace {

bool VcBranch(const Graph& g, int k, util::Bitset* removed,
              std::vector<int>* cover) {
  // Find an edge with both endpoints alive.
  int eu = -1, ev = -1;
  for (auto [u, v] : g.Edges()) {
    if (!removed->Test(u) && !removed->Test(v)) {
      eu = u;
      ev = v;
      break;
    }
  }
  if (eu < 0) return true;  // No uncovered edge left.
  if (k == 0) return false;
  for (int pick : {eu, ev}) {
    removed->Set(pick);
    cover->push_back(pick);
    if (VcBranch(g, k - 1, removed, cover)) return true;
    cover->pop_back();
    removed->Reset(pick);
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindVertexCoverOfSize(const Graph& g, int k) {
  util::Bitset removed(g.num_vertices());
  std::vector<int> cover;
  if (VcBranch(g, k, &removed, &cover)) {
    std::sort(cover.begin(), cover.end());
    return cover;
  }
  return std::nullopt;
}

std::vector<int> MinVertexCover(const Graph& g) {
  for (int k = 0; k <= g.num_vertices(); ++k) {
    auto c = FindVertexCoverOfSize(g, k);
    if (c) return *c;
  }
  return {};  // Unreachable: all vertices always cover.
}

std::vector<int> TwoApproxVertexCover(const Graph& g) {
  util::Bitset in(g.num_vertices());
  std::vector<int> cover;
  for (auto [u, v] : g.Edges()) {
    if (!in.Test(u) && !in.Test(v)) {
      in.Set(u);
      in.Set(v);
      cover.push_back(u);
      cover.push_back(v);
    }
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

VertexCoverKernel KernelizeVertexCover(const Graph& g, int k) {
  VertexCoverKernel kernel;
  // Iterate the high-degree rule to a fixpoint: a vertex with more than
  // `budget` live incident edges must join the cover (otherwise all its
  // neighbours would, blowing the budget).
  std::vector<bool> removed(g.num_vertices(), false);
  std::vector<int> degree(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) degree[v] = g.Degree(v);
  int budget = k;
  bool changed = true;
  while (changed && budget >= 0) {
    changed = false;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (!removed[v] && degree[v] > budget) {
        removed[v] = true;
        kernel.forced.push_back(v);
        --budget;
        for (int u : g.NeighborList(v)) {
          if (!removed[u]) --degree[u];
        }
        changed = true;
        if (budget < 0) break;
      }
    }
  }
  kernel.remaining_budget = budget;
  if (budget < 0) {
    kernel.definitely_no = true;
    return kernel;
  }
  // Residual graph and the k^2 edge bound.
  Graph residual(g.num_vertices());
  long long edges = 0;
  for (auto [u, v] : g.Edges()) {
    if (!removed[u] && !removed[v]) {
      residual.AddEdge(u, v);
      ++edges;
    }
  }
  if (edges > static_cast<long long>(budget) * budget) {
    kernel.definitely_no = true;
    return kernel;
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!removed[v] && residual.Degree(v) > 0) {
      kernel.kernel_vertices.push_back(v);
    }
  }
  kernel.kernel = std::move(residual);
  return kernel;
}

std::optional<std::vector<int>> FindVertexCoverKernelized(const Graph& g,
                                                          int k) {
  VertexCoverKernel kernel = KernelizeVertexCover(g, k);
  if (kernel.definitely_no) return std::nullopt;
  auto rest = FindVertexCoverOfSize(kernel.kernel, kernel.remaining_budget);
  if (!rest) return std::nullopt;
  std::vector<int> cover = kernel.forced;
  cover.insert(cover.end(), rest->begin(), rest->end());
  std::sort(cover.begin(), cover.end());
  return cover;
}

std::vector<int> MaxIndependentSet(const Graph& g) {
  std::vector<int> cover = MinVertexCover(g);
  util::Bitset in(g.num_vertices());
  for (int v : cover) in.Set(v);
  std::vector<int> out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!in.Test(v)) out.push_back(v);
  }
  return out;
}

}  // namespace qc::graph
