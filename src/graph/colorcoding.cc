#include "graph/colorcoding.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/threadpool.h"
#include "util/trace.h"

namespace qc::graph {

bool IsSimplePath(const Graph& g, const std::vector<int>& path) {
  std::vector<int> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  if (std::unique(sorted.begin(), sorted.end()) != sorted.end()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.HasEdge(path[i], path[i + 1])) return false;
  }
  return true;
}

namespace {

/// One colour-coding round: DP over (colour subset, endpoint). Returns a
/// colourful k-path under `color` or nullopt.
std::optional<std::vector<int>> ColorfulPath(const Graph& g, int k,
                                             const std::vector<int>& color,
                                             util::Budget* budget) {
  const int n = g.num_vertices();
  const unsigned full = (1u << k) - 1u;
  // reachable[S * n + v]: a colourful path with colour set S ends at v.
  std::vector<char> reachable(static_cast<std::size_t>(full + 1) * n, 0);
  for (int v = 0; v < n; ++v) {
    reachable[static_cast<std::size_t>(1u << color[v]) * n + v] = 1;
  }
  // Process subsets in increasing popcount (increasing numeric order works:
  // S' = S \ {c} < S).
  for (unsigned s = 1; s <= full; ++s) {
    // Safe point per colour subset: bounds the drain to one O(n*deg) sweep.
    if (budget != nullptr && budget->Poll()) return std::nullopt;
    for (int v = 0; v < n; ++v) {
      unsigned bit = 1u << color[v];
      if (!(s & bit) || reachable[static_cast<std::size_t>(s) * n + v]) continue;
      unsigned prev = s & ~bit;
      if (prev == 0) continue;
      for (int u : g.NeighborList(v)) {
        if (reachable[static_cast<std::size_t>(prev) * n + u]) {
          reachable[static_cast<std::size_t>(s) * n + v] = 1;
          break;
        }
      }
    }
  }
  int end = -1;
  for (int v = 0; v < n; ++v) {
    if (reachable[static_cast<std::size_t>(full) * n + v]) {
      end = v;
      break;
    }
  }
  if (end < 0) return std::nullopt;
  // Backtrack the witness.
  std::vector<int> path = {end};
  unsigned s = full;
  int v = end;
  while (static_cast<int>(path.size()) < k) {
    unsigned prev = s & ~(1u << color[v]);
    for (int u : g.NeighborList(v)) {
      if (reachable[static_cast<std::size_t>(prev) * n + u]) {
        path.push_back(u);
        s = prev;
        v = u;
        break;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::optional<std::vector<int>> FindKPathColorCoding(const Graph& g, int k,
                                                     util::Rng* rng,
                                                     int rounds, int threads,
                                                     util::Budget* budget) {
  if (k <= 0 || k > 20 || g.num_vertices() == 0) return std::nullopt;
  if (k == 1) return std::vector<int>{0};
  if (rounds <= 0) {
    // P[path colourful] = k!/k^k ~ e^{-k}; e^k * 3 rounds give ~95%.
    rounds = static_cast<int>(std::ceil(std::exp(k) * 3.0));
  }
  // Trials are processed in fixed-size batches so rng advances by whole
  // batches: round r's seed is the (r+1)-th draw from `rng` no matter how
  // many threads run, and the lowest successful round index wins. The batch
  // size is deliberately independent of `threads` to keep rng's final state
  // identical across thread counts.
  constexpr int kBatch = 32;
  // Span per *batch*, opened on the coordinating thread: individual rounds
  // are raced and skipped once a lower round wins, so per-round spans would
  // not be thread-count-invariant, but the number of batches opened is.
  static const std::uint32_t kBatchSpan =
      util::Trace::InternName("colorcoding.batch");
  std::vector<std::uint64_t> seeds(kBatch);
  std::vector<std::optional<std::vector<int>>> found(kBatch);
  for (int done = 0; done < rounds; done += kBatch) {
    util::ScopedSpan batch_span(kBatchSpan);
    const int batch = std::min(kBatch, rounds - done);
    for (int r = 0; r < batch; ++r) seeds[r] = rng->Next();
    std::atomic<int> first_success(batch);
    auto trial_block = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t r = lo; r < hi; ++r) {
        if (budget != nullptr && budget->Stopped()) return;
        // A lower round already succeeded: this one cannot win.
        if (static_cast<int>(r) > first_success.load(std::memory_order_relaxed))
          continue;
        util::Rng local(seeds[r]);
        std::vector<int> color(g.num_vertices());
        for (auto& c : color) c = static_cast<int>(local.NextBounded(k));
        found[r] = ColorfulPath(g, k, color, budget);
        if (found[r].has_value()) {
          int expect = first_success.load(std::memory_order_relaxed);
          while (static_cast<int>(r) < expect &&
                 !first_success.compare_exchange_weak(
                     expect, static_cast<int>(r), std::memory_order_relaxed)) {
          }
        }
      }
    };
    util::ThreadPool::Shared().ParallelFor(0, batch, trial_block, threads,
                                           /*min_grain=*/1, budget);
    int winner = first_success.load();
    if (winner < batch) return found[winner];
    for (int r = 0; r < batch; ++r) found[r].reset();
    // Stop opening new batches once the budget has tripped; a "not found"
    // under a tripped budget means "unknown", which budget->status() records.
    if (budget != nullptr && budget->Poll()) return std::nullopt;
  }
  return std::nullopt;
}

namespace {

bool PathSearch(const Graph& g, int k, std::vector<int>* path,
                util::Bitset* used) {
  if (static_cast<int>(path->size()) == k) return true;
  int last = path->back();
  for (int u : g.NeighborList(last)) {
    if (used->Test(u)) continue;
    used->Set(u);
    path->push_back(u);
    if (PathSearch(g, k, path, used)) return true;
    path->pop_back();
    used->Reset(u);
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindKPathBruteForce(const Graph& g, int k) {
  if (k <= 0 || g.num_vertices() == 0) return std::nullopt;
  for (int start = 0; start < g.num_vertices(); ++start) {
    std::vector<int> path = {start};
    util::Bitset used(g.num_vertices());
    used.Set(start);
    if (PathSearch(g, k, &path, &used)) return path;
  }
  return std::nullopt;
}

}  // namespace qc::graph
