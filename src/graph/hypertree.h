#ifndef QC_GRAPH_HYPERTREE_H_
#define QC_GRAPH_HYPERTREE_H_

#include <optional>

#include "graph/hypergraph.h"
#include "graph/treewidth.h"
#include "util/fraction.h"

namespace qc::graph {

/// Fractional hypertree width of a fixed tree decomposition: the maximum
/// over bags of the fractional edge cover number of the bag (covering the
/// bag's vertices with the hypergraph's edges). This is the width notion
/// behind the modern N^{fhw} join upper bounds that refine the treewidth
/// and AGM stories the paper tells; fhw = 1 exactly on alpha-acyclic
/// hypergraphs.
///
/// Returns nullopt if some bag vertex lies in no hyperedge.
std::optional<util::Fraction> FractionalHypertreeWidthOf(
    const Hypergraph& h, const TreeDecomposition& td);

/// Heuristic fractional hypertree width: evaluates the decompositions
/// induced by the min-degree and min-fill elimination orders of the primal
/// graph plus (when the hypergraph is acyclic) the GYO join tree, and
/// returns the best width with its decomposition.
struct FhwUpperBound {
  util::Fraction width;
  TreeDecomposition decomposition;
};
std::optional<FhwUpperBound> HeuristicFractionalHypertreeWidth(
    const Hypergraph& h);

/// The tree decomposition induced by the GYO join tree of an acyclic
/// hypergraph: one bag per hyperedge, join-tree edges. Width fhw = 1 by
/// construction. Returns nullopt if h is cyclic.
std::optional<TreeDecomposition> JoinTreeDecomposition(const Hypergraph& h);

}  // namespace qc::graph

#endif  // QC_GRAPH_HYPERTREE_H_
