#include "graph/graph.h"

#include <algorithm>

namespace qc::graph {

Graph::Graph(int n) : n_(n), adj_(n, util::Bitset(n)) {}

void Graph::AddEdge(int u, int v) {
  if (u == v || adj_[u].Test(v)) return;
  adj_[u].Set(v);
  adj_[v].Set(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices) const {
  Graph g(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (HasEdge(vertices[i], vertices[j])) {
        g.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

Graph Graph::Complement() const {
  Graph g(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (!HasEdge(u, v)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph Graph::DisjointUnion(const Graph& other) const {
  Graph g(n_ + other.n_);
  for (auto [u, v] : edges_) g.AddEdge(u, v);
  for (auto [u, v] : other.edges_) g.AddEdge(n_ + u, n_ + v);
  return g;
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<int> comp(n_, -1);
  std::vector<std::vector<int>> out;
  for (int s = 0; s < n_; ++s) {
    if (comp[s] >= 0) continue;
    int id = static_cast<int>(out.size());
    out.emplace_back();
    std::vector<int> stack = {s};
    comp[s] = id;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      out[id].push_back(v);
      for (int w : NeighborList(v)) {
        if (comp[w] < 0) {
          comp[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  for (auto& c : out) std::sort(c.begin(), c.end());
  return out;
}

bool Graph::IsForest() const {
  auto comps = ConnectedComponents();
  // A forest has exactly n - (#components) edges.
  return num_edges() == n_ - static_cast<int>(comps.size());
}

std::pair<std::vector<int>, int> Graph::DegeneracyOrder() const {
  std::vector<int> deg(n_);
  std::vector<bool> removed(n_, false);
  for (int v = 0; v < n_; ++v) deg[v] = Degree(v);
  std::vector<int> order;
  order.reserve(n_);
  int degeneracy = 0;
  for (int step = 0; step < n_; ++step) {
    int best = -1;
    for (int v = 0; v < n_; ++v) {
      if (!removed[v] && (best < 0 || deg[v] < deg[best])) best = v;
    }
    degeneracy = std::max(degeneracy, deg[best]);
    removed[best] = true;
    order.push_back(best);
    for (int w : NeighborList(best)) {
      if (!removed[w]) --deg[w];
    }
  }
  return {order, degeneracy};
}

}  // namespace qc::graph
