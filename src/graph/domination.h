#ifndef QC_GRAPH_DOMINATION_H_
#define QC_GRAPH_DOMINATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// True if every vertex is in the closed neighbourhood of some member of s.
bool IsDominatingSet(const Graph& g, const std::vector<int>& s);

/// Brute-force k-Dominating-Set: tries the O(n^k) subsets of size <= k with
/// word-parallel coverage checks — the algorithm whose SETH-optimality
/// Theorem 7.1 asserts. Returns a dominating set or nullopt. When
/// `nodes_examined` is non-null it receives the number of candidate sets
/// visited (the n^k work measure).
std::optional<std::vector<int>> FindDominatingSetOfSize(
    const Graph& g, int k, std::uint64_t* nodes_examined = nullptr);

/// Exact minimum dominating set via branch and bound (branch on an
/// uncovered vertex's closed neighbourhood). Exponential; small graphs only.
std::vector<int> MinDominatingSet(const Graph& g);

/// Greedy ln(n)-approximation (repeatedly take the vertex covering the most
/// uncovered vertices).
std::vector<int> GreedyDominatingSet(const Graph& g);

}  // namespace qc::graph

#endif  // QC_GRAPH_DOMINATION_H_
