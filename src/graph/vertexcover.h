#ifndef QC_GRAPH_VERTEXCOVER_H_
#define QC_GRAPH_VERTEXCOVER_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// True if every edge has an endpoint in s.
bool IsVertexCover(const Graph& g, const std::vector<int>& s);

/// The 2^k * n^{O(1)} bounded-depth branching algorithm of Section 5: picks
/// an uncovered edge and branches on which endpoint joins the cover. This is
/// the canonical FPT algorithm the paper contrasts with Clique's n^{Theta(k)}.
std::optional<std::vector<int>> FindVertexCoverOfSize(const Graph& g, int k);

/// Exact minimum vertex cover (binary search over FindVertexCoverOfSize).
std::vector<int> MinVertexCover(const Graph& g);

/// Classic maximal-matching 2-approximation.
std::vector<int> TwoApproxVertexCover(const Graph& g);

/// Maximum independent set via complement of MinVertexCover.
std::vector<int> MaxIndependentSet(const Graph& g);

/// Buss kernelization for Vertex Cover(k): vertices of degree > k are
/// forced into the cover; isolated vertices are dropped; if more than k*k
/// edges remain the instance is a definite NO. The classic kernel that
/// makes the 2^k branching of Section 5 run on a k^2-size core.
struct VertexCoverKernel {
  bool definitely_no = false;   ///< More than k' * k' edges remained.
  std::vector<int> forced;      ///< Vertices every size-<=k cover contains.
  int remaining_budget = 0;     ///< k minus the forced vertices.
  Graph kernel;                 ///< Residual graph (original vertex ids,
                                ///< forced/isolated vertices isolated).
  std::vector<int> kernel_vertices;  ///< Vertices with surviving edges.
};
VertexCoverKernel KernelizeVertexCover(const Graph& g, int k);

/// FindVertexCoverOfSize through the Buss kernel: equivalent answers,
/// exponentially smaller search on high-degree-skewed inputs.
std::optional<std::vector<int>> FindVertexCoverKernelized(const Graph& g,
                                                          int k);

}  // namespace qc::graph

#endif  // QC_GRAPH_VERTEXCOVER_H_
