#ifndef QC_GRAPH_BOOLMATRIX_H_
#define QC_GRAPH_BOOLMATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace qc::util {
class Budget;
}  // namespace qc::util

namespace qc::graph {

/// Dense Boolean matrix with bit-packed rows in one contiguous allocation.
///
/// This is the project's matrix-multiplication substrate (see DESIGN.md §1):
/// the paper's omega < 2.3729 algorithms are replaced by word-parallel cubic
/// multiplication, which preserves the *shape* of every "via matrix
/// multiplication" claim because it only needs the MM primitive to beat
/// per-entry scalar work.
///
/// Rows are stored row-major with a stride padded to a multiple of 8 words
/// (64 bytes), so consecutive rows start on cache-line boundaries and the
/// SIMD OR kernels (kernels::OrWords/OrWords4) stream whole lines with no
/// per-row tail handling. Padding words are always zero — Set/Test never
/// touch them — so whole-stride operations are safe and comparisons exact.
class BoolMatrix {
 public:
  BoolMatrix() = default;
  BoolMatrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Set(int i, int j) {
    words_[RowOffset(i) + (static_cast<std::size_t>(j) >> 6)] |=
        std::uint64_t{1} << (j & 63);
  }
  bool Test(int i, int j) const {
    return (words_[RowOffset(i) + (static_cast<std::size_t>(j) >> 6)] >>
            (j & 63)) &
           1u;
  }

  /// Row `i` materialized as a Bitset (a copy; the matrix itself no longer
  /// stores per-row Bitset objects). Use RowWords for zero-copy access.
  util::Bitset Row(int i) const;

  /// Words of row `i`: words_per_row() words, bits beyond cols() are zero.
  const std::uint64_t* RowWords(int i) const {
    return words_.data() + RowOffset(i);
  }
  std::uint64_t* RowWords(int i) { return words_.data() + RowOffset(i); }

  /// Padded row stride in 64-bit words (a multiple of 8).
  std::size_t words_per_row() const { return words_per_row_; }

  /// Boolean product: (A*B)[i][j] = OR_k A[i][k] AND B[k][j].
  /// Runs in O(rows * A.cols * B.cols/64) word operations through the
  /// dispatched OR kernels, 4 source rows per pass. Row blocks are computed
  /// in parallel on `threads` workers (0 = the QC_THREADS default); every
  /// row is written independently, so the product is bit-identical at any
  /// thread count and any QC_SIMD level.
  ///
  /// `budget` (optional) is polled once per output row; on a trip the
  /// remaining rows are left all-zero and the caller must consult
  /// budget->Stopped() before trusting the product. Workers also charge one
  /// work unit per row so work-limit budgets see MM progress.
  BoolMatrix Multiply(const BoolMatrix& other, int threads = 0,
                      util::Budget* budget = nullptr) const;

  /// Adjacency matrix of g.
  static BoolMatrix FromGraph(const Graph& g);

  bool operator==(const BoolMatrix& other) const {
    // Equal dims imply equal strides, and padding is identically zero.
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           words_ == other.words_;
  }

 private:
  std::size_t RowOffset(int i) const {
    return static_cast<std::size_t>(i) * words_per_row_;
  }

  int rows_ = 0, cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qc::graph

#endif  // QC_GRAPH_BOOLMATRIX_H_
