#ifndef QC_GRAPH_BOOLMATRIX_H_
#define QC_GRAPH_BOOLMATRIX_H_

#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace qc::graph {

/// Dense Boolean matrix with bitset-packed rows.
///
/// This is the project's matrix-multiplication substrate (see DESIGN.md §1):
/// the paper's omega < 2.3729 algorithms are replaced by word-parallel cubic
/// multiplication, which preserves the *shape* of every "via matrix
/// multiplication" claim because it only needs the MM primitive to beat
/// per-entry scalar work.
class BoolMatrix {
 public:
  BoolMatrix() = default;
  BoolMatrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Set(int i, int j) { data_[i].Set(j); }
  bool Test(int i, int j) const { return data_[i].Test(j); }

  const util::Bitset& Row(int i) const { return data_[i]; }

  /// Boolean product: (A*B)[i][j] = OR_k A[i][k] AND B[k][j].
  /// Runs in O(rows * A.cols * B.cols/64) word operations. Row blocks are
  /// computed in parallel on `threads` workers (0 = the QC_THREADS default);
  /// every row is written independently, so the product is bit-identical at
  /// any thread count.
  BoolMatrix Multiply(const BoolMatrix& other, int threads = 0) const;

  /// Adjacency matrix of g.
  static BoolMatrix FromGraph(const Graph& g);

  bool operator==(const BoolMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<util::Bitset> data_;
};

}  // namespace qc::graph

#endif  // QC_GRAPH_BOOLMATRIX_H_
