#ifndef QC_GRAPH_COLORCODING_H_
#define QC_GRAPH_COLORCODING_H_

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/budget.h"
#include "util/rng.h"

namespace qc::graph {

/// Color coding (Alon–Yuster–Zwick) for k-Path: randomly k-colour the
/// vertices and look for a *colourful* path (all k colours distinct) by
/// dynamic programming over colour subsets in 2^k * m time; repeat enough
/// rounds that a k-path, if present, is colourful at least once with the
/// requested confidence. The flagship randomized-FPT technique of the
/// parameterized toolbox sketched in Section 5.
///
/// Returns a simple path with k vertices, or nullopt if none was found
/// (one-sided error: a returned path is always real).
///
/// Rounds run `threads` at a time (0 = the QC_THREADS default). Each round
/// is coloured by its own child generator seeded serially from `rng`, and
/// the lowest-numbered successful round wins, so the returned path — and
/// `rng`'s final state — are bit-identical at any thread count.
///
/// When `budget` trips mid-search the function stops opening new rounds and
/// returns nullopt promptly (partial semantics: "not found within budget" —
/// query budget->status() to distinguish from an exhausted search). rng
/// still advances by whole batches, so a completed run is unaffected by the
/// budget being armed.
std::optional<std::vector<int>> FindKPathColorCoding(
    const Graph& g, int k, util::Rng* rng, int rounds = 0, int threads = 0,
    util::Budget* budget = nullptr);

/// Deterministic backtracking for a simple k-vertex path (baseline).
std::optional<std::vector<int>> FindKPathBruteForce(const Graph& g, int k);

/// True if `path` is a simple path in g.
bool IsSimplePath(const Graph& g, const std::vector<int>& path);

}  // namespace qc::graph

#endif  // QC_GRAPH_COLORCODING_H_
