#include "graph/homomorphism.h"

#include <algorithm>

namespace qc::graph {

namespace {

/// Orders H's vertices so each (after the first of its component) has a
/// previously placed neighbour — keeps backtracking pruned.
std::vector<int> ConnectedOrder(const Graph& h) {
  const int n = h.num_vertices();
  std::vector<int> order;
  std::vector<bool> placed(n, false);
  order.reserve(n);
  for (int s = 0; s < n; ++s) {
    if (placed[s]) continue;
    std::vector<int> queue = {s};
    placed[s] = true;
    std::size_t head = order.size();
    order.push_back(s);
    while (head < order.size()) {
      int v = order[head++];
      for (int u : h.NeighborList(v)) {
        if (!placed[u]) {
          placed[u] = true;
          order.push_back(u);
        }
      }
    }
  }
  return order;
}

bool HomSearch(const Graph& h, const Graph& g, const std::vector<int>& order,
               std::size_t pos, std::vector<int>* f, std::uint64_t* count,
               bool count_all) {
  if (pos == order.size()) {
    if (count != nullptr) ++*count;
    return !count_all;
  }
  int v = order[pos];
  for (int img = 0; img < g.num_vertices(); ++img) {
    bool ok = true;
    for (int u : h.NeighborList(v)) {
      if ((*f)[u] >= 0 && !g.HasEdge((*f)[u], img)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*f)[v] = img;
    if (HomSearch(h, g, order, pos + 1, f, count, count_all)) return true;
    (*f)[v] = -1;
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindHomomorphism(const Graph& h,
                                                 const Graph& g) {
  // Loops: hom must map edge endpoints to an edge; if H has an edge and G
  // has none, fail fast.
  if (h.num_edges() > 0 && g.num_edges() == 0) return std::nullopt;
  std::vector<int> f(h.num_vertices(), -1);
  std::vector<int> order = ConnectedOrder(h);
  if (HomSearch(h, g, order, 0, &f, nullptr, false)) return f;
  return std::nullopt;
}

std::uint64_t CountHomomorphisms(const Graph& h, const Graph& g) {
  std::vector<int> f(h.num_vertices(), -1);
  std::vector<int> order = ConnectedOrder(h);
  std::uint64_t count = 0;
  HomSearch(h, g, order, 0, &f, &count, true);
  return count;
}

namespace {

bool SubIsoSearch(const Graph& h, const Graph& g, bool induced,
                  const std::vector<int>& order, std::size_t pos,
                  std::vector<int>* f, std::vector<bool>* used) {
  if (pos == order.size()) return true;
  int v = order[pos];
  for (int img = 0; img < g.num_vertices(); ++img) {
    if ((*used)[img]) continue;
    bool ok = true;
    for (int u = 0; u < h.num_vertices() && ok; ++u) {
      if ((*f)[u] < 0) continue;
      if (h.HasEdge(u, v)) {
        ok = g.HasEdge((*f)[u], img);
      } else if (induced && u != v) {
        ok = !g.HasEdge((*f)[u], img);
      }
    }
    if (!ok) continue;
    (*f)[v] = img;
    (*used)[img] = true;
    if (SubIsoSearch(h, g, induced, order, pos + 1, f, used)) return true;
    (*f)[v] = -1;
    (*used)[img] = false;
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindSubgraphIsomorphism(const Graph& h,
                                                        const Graph& g,
                                                        bool induced) {
  if (h.num_vertices() > g.num_vertices()) return std::nullopt;
  std::vector<int> f(h.num_vertices(), -1);
  std::vector<bool> used(g.num_vertices(), false);
  std::vector<int> order;
  {
    // Reuse the connectivity-friendly order used by the homomorphism
    // search (defined above in this translation unit).
    order.reserve(h.num_vertices());
    std::vector<bool> placed(h.num_vertices(), false);
    for (int s = 0; s < h.num_vertices(); ++s) {
      if (placed[s]) continue;
      placed[s] = true;
      order.push_back(s);
      for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
        for (int u : h.NeighborList(order[head])) {
          if (!placed[u]) {
            placed[u] = true;
            order.push_back(u);
          }
        }
      }
    }
  }
  if (SubIsoSearch(h, g, induced, order, 0, &f, &used)) return f;
  return std::nullopt;
}

namespace {

bool ListHomSearch(const Graph& h, const Graph& g,
                   const std::vector<std::vector<int>>& lists,
                   const std::vector<int>& order, std::size_t pos,
                   std::vector<int>* f) {
  if (pos == order.size()) return true;
  int v = order[pos];
  for (int img : lists[v]) {
    bool ok = true;
    for (int u : h.NeighborList(v)) {
      if ((*f)[u] >= 0 && !g.HasEdge((*f)[u], img)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*f)[v] = img;
    if (ListHomSearch(h, g, lists, order, pos + 1, f)) return true;
    (*f)[v] = -1;
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindListHomomorphism(
    const Graph& h, const Graph& g,
    const std::vector<std::vector<int>>& lists) {
  std::vector<int> f(h.num_vertices(), -1);
  std::vector<int> order = ConnectedOrder(h);
  if (ListHomSearch(h, g, lists, order, 0, &f)) return f;
  return std::nullopt;
}

std::optional<std::vector<int>> FindPartitionedSubgraphIsomorphism(
    const Graph& h, const Graph& g, const std::vector<int>& class_of) {
  const int k = h.num_vertices();
  std::vector<std::vector<int>> klass(k);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (class_of[v] >= 0 && class_of[v] < k) klass[class_of[v]].push_back(v);
  }
  std::vector<int> order = ConnectedOrder(h);
  std::vector<int> f(k, -1);
  // Depth-first over H's vertices; candidates restricted to each class.
  std::vector<std::size_t> cursor(k, 0);
  std::size_t pos = 0;
  while (true) {
    if (pos == order.size()) return f;
    int v = order[pos];
    bool advanced = false;
    for (std::size_t& i = cursor[pos]; i < klass[v].size(); ++i) {
      int img = klass[v][i];
      bool ok = true;
      for (int u : h.NeighborList(v)) {
        if (f[u] >= 0 && !g.HasEdge(f[u], img)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        f[v] = img;
        ++i;
        ++pos;
        if (pos < order.size()) cursor[pos] = 0;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      f[v] = -1;
      if (pos == 0) return std::nullopt;
      --pos;
      f[order[pos]] = -1;
    }
  }
}

}  // namespace qc::graph
