#include "graph/triangles.h"

#include <algorithm>
#include <cmath>

#include "graph/boolmatrix.h"
#include "util/budget.h"
#include "util/trace.h"

namespace qc::graph {

namespace {

/// The one heaviness predicate shared by the AYZ light scan and the
/// heavy-subgraph build. Degree(v) == delta is LIGHT: keeping a single
/// definition makes it impossible for a boundary vertex to be skipped by
/// the light scan yet excluded from the heavy subgraph (which would
/// silently drop its triangles).
bool AyzHeavy(const Graph& g, int v, int delta) {
  return g.Degree(v) > delta;
}

/// Budget poll helper: true when work should stop.
bool Tripped(util::Budget* budget) {
  return budget != nullptr && budget->Poll();
}

}  // namespace

std::optional<std::array<int, 3>> FindTriangleEnumeration(const Graph& g) {
  const int n = g.num_vertices();
  // Rank vertices by (degree, id); orient each edge toward the higher rank.
  std::vector<int> rank(n);
  std::vector<int> by_deg(n);
  for (int v = 0; v < n; ++v) by_deg[v] = v;
  std::sort(by_deg.begin(), by_deg.end(), [&](int a, int b) {
    int da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  for (int i = 0; i < n; ++i) rank[by_deg[i]] = i;
  std::vector<util::Bitset> fwd(n, util::Bitset(n));
  for (auto [u, v] : g.Edges()) {
    if (rank[u] < rank[v]) {
      fwd[u].Set(v);
    } else {
      fwd[v].Set(u);
    }
  }
  for (auto [u, v] : g.Edges()) {
    int lo = rank[u] < rank[v] ? u : v;
    int hi = lo == u ? v : u;
    // Common forward neighbour of both endpoints closes a triangle.
    util::Bitset common = fwd[lo];
    common &= fwd[hi];
    int w = common.NextSetBit(0);
    if (w >= 0) {
      std::array<int, 3> t = {u, v, w};
      std::sort(t.begin(), t.end());
      return t;
    }
  }
  return std::nullopt;
}

std::optional<std::array<int, 3>> FindTriangleEnumerationScalar(
    const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> rank(n);
  std::vector<int> by_deg(n);
  for (int v = 0; v < n; ++v) by_deg[v] = v;
  std::sort(by_deg.begin(), by_deg.end(), [&](int a, int b) {
    int da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  for (int i = 0; i < n; ++i) rank[by_deg[i]] = i;
  // Forward adjacency lists, sorted by vertex id.
  std::vector<std::vector<int>> fwd(n);
  for (auto [u, v] : g.Edges()) {
    if (rank[u] < rank[v]) {
      fwd[u].push_back(v);
    } else {
      fwd[v].push_back(u);
    }
  }
  for (auto& list : fwd) std::sort(list.begin(), list.end());
  for (auto [u, v] : g.Edges()) {
    int lo = rank[u] < rank[v] ? u : v;
    int hi = lo == u ? v : u;
    // Two-pointer merge of the forward lists.
    const auto& a = fwd[lo];
    const auto& b = fwd[hi];
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        std::array<int, 3> t = {u, v, a[i]};
        std::sort(t.begin(), t.end());
        return t;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::array<int, 3>> FindTriangleMatrix(const Graph& g,
                                                     util::Budget* budget) {
  BoolMatrix a = BoolMatrix::FromGraph(g);
  BoolMatrix a2 = a.Multiply(a, /*threads=*/0, budget);
  if (budget != nullptr && budget->Stopped()) return std::nullopt;
  const int n = g.num_vertices();
  for (int i = 0; i < n; ++i) {
    if (Tripped(budget)) return std::nullopt;
    util::Bitset row = a2.Row(i);
    row &= a.Row(i);
    int j = row.NextSetBit(0);
    if (j < 0) continue;
    // Recover the middle vertex.
    util::Bitset mid = a.Row(i);
    mid &= a.Row(j);
    int k = mid.NextSetBit(0);
    std::array<int, 3> t = {i, j, k};
    std::sort(t.begin(), t.end());
    return t;
  }
  return std::nullopt;
}

std::optional<std::array<int, 3>> FindTriangleAyz(const Graph& g, int delta,
                                                  util::Budget* budget) {
  const int n = g.num_vertices();
  const int m = g.num_edges();
  // m == 0 (including the singleton / empty graph) short-circuits before
  // the delta auto-pick, so sqrt(0) never produces a degenerate threshold.
  if (m == 0) return std::nullopt;
  if (delta <= 0) {
    delta = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(m))));
  }
  // Light phase: any triangle with a low-degree vertex is found by scanning
  // that vertex's neighbour pairs — O(m * delta).
  {
    static const std::uint32_t kLightSpan =
        util::Trace::InternName("triangles.ayz.light");
    util::ScopedSpan light_span(kLightSpan);
    for (int v = 0; v < n; ++v) {
      if (AyzHeavy(g, v, delta)) continue;
      if (Tripped(budget)) return std::nullopt;
      std::vector<int> nb = g.NeighborList(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (Tripped(budget)) return std::nullopt;
        for (std::size_t j = i + 1; j < nb.size(); ++j) {
          if (g.HasEdge(nb[i], nb[j])) {
            std::array<int, 3> t = {v, nb[i], nb[j]};
            std::sort(t.begin(), t.end());
            return t;
          }
        }
      }
    }
  }
  // Heavy phase: at most 2m/delta heavy vertices; all-heavy triangles via
  // matrix multiplication on the induced subgraph. Uses the same AyzHeavy
  // predicate as the light scan, so every vertex belongs to exactly one
  // phase.
  static const std::uint32_t kHeavySpan =
      util::Trace::InternName("triangles.ayz.heavy");
  util::ScopedSpan heavy_span(kHeavySpan);
  std::vector<int> heavy;
  for (int v = 0; v < n; ++v) {
    if (AyzHeavy(g, v, delta)) heavy.push_back(v);
  }
  Graph h = g.InducedSubgraph(heavy);
  auto t = FindTriangleMatrix(h, budget);
  if (!t) return std::nullopt;
  std::array<int, 3> out = {heavy[(*t)[0]], heavy[(*t)[1]], heavy[(*t)[2]]};
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t CountTrianglesScalar(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> rank(n);
  std::vector<int> by_deg(n);
  for (int v = 0; v < n; ++v) by_deg[v] = v;
  std::sort(by_deg.begin(), by_deg.end(), [&](int a, int b) {
    int da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  for (int i = 0; i < n; ++i) rank[by_deg[i]] = i;
  std::vector<std::vector<int>> fwd(n);
  for (auto [u, v] : g.Edges()) {
    if (rank[u] < rank[v]) {
      fwd[u].push_back(v);
    } else {
      fwd[v].push_back(u);
    }
  }
  for (auto& list : fwd) std::sort(list.begin(), list.end());
  std::uint64_t count = 0;
  for (auto [u, v] : g.Edges()) {
    int lo = rank[u] < rank[v] ? u : v;
    int hi = lo == u ? v : u;
    const auto& a = fwd[lo];
    const auto& b = fwd[hi];
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
  }
  return count;
}

std::uint64_t CountTriangles(const Graph& g, util::Budget* budget) {
  const int n = g.num_vertices();
  // Mask of vertices with id > v, to count each triangle exactly once.
  std::vector<util::Bitset> above(n, util::Bitset(n));
  for (int v = 0; v < n; ++v) {
    if (Tripped(budget)) return 0;
    for (int w = v + 1; w < n; ++w) above[v].Set(w);
  }
  std::uint64_t count = 0;
  for (auto [u, v] : g.Edges()) {
    if (budget != nullptr && budget->ChargeWork(1)) return count;
    int hi = std::max(u, v);
    util::Bitset common = g.Neighbors(u);
    common &= g.Neighbors(v);
    common &= above[hi];
    count += common.Count();
  }
  return count;
}

}  // namespace qc::graph
