#ifndef QC_GRAPH_NICE_DECOMPOSITION_H_
#define QC_GRAPH_NICE_DECOMPOSITION_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/treewidth.h"

namespace qc::graph {

/// A *nice* tree decomposition: every node is a leaf (empty bag), an
/// introduce node (child bag plus one vertex), a forget node (child bag
/// minus one vertex), or a join node (two children with identical bags).
/// This is the standard normal form the bounded-treewidth dynamic programs
/// of Section 7's citations ([15], [30], [51]) are written against.
struct NiceTreeDecomposition {
  enum class NodeType { kLeaf, kIntroduce, kForget, kJoin };

  struct Node {
    NodeType type;
    std::vector<int> bag;       ///< Sorted.
    int vertex = -1;            ///< Introduced/forgotten vertex.
    std::vector<int> children;  ///< 0 (leaf), 1 (intro/forget), 2 (join).
  };

  /// Children always precede parents; the last node is the root, whose bag
  /// is empty (everything is forgotten at the top).
  std::vector<Node> nodes;

  int root() const { return static_cast<int>(nodes.size()) - 1; }

  /// Width: max bag size - 1.
  int Width() const;

  /// Structural sanity check: node-type invariants plus the tree
  /// decomposition conditions against g.
  std::optional<std::string> Validate(const Graph& g) const;

  /// Converts an arbitrary (valid) tree decomposition: roots it, inserts
  /// forget/introduce chains along every tree edge, binarizes with join
  /// nodes, and forgets the root bag down to empty. The width is unchanged.
  static NiceTreeDecomposition FromTreeDecomposition(
      const TreeDecomposition& td, const Graph& g);
};

/// Maximum independent set via the 2^w dynamic program over a nice tree
/// decomposition — the algorithm whose SETH-optimality [51] proves (cited
/// around Theorem 7.1). Returns the maximum size; writes a witness set if
/// `witness` is non-null.
int MaxIndependentSetTreewidth(const Graph& g,
                               const NiceTreeDecomposition& ntd,
                               std::vector<int>* witness = nullptr);

/// Minimum dominating set size via the 3-state (black/white/grey) dynamic
/// program over a nice tree decomposition — the 3^w-family algorithm of
/// [15]/[51]. Requires g to have no isolated... handles all graphs.
int MinDominatingSetTreewidth(const Graph& g,
                              const NiceTreeDecomposition& ntd);

}  // namespace qc::graph

#endif  // QC_GRAPH_NICE_DECOMPOSITION_H_
