#include "graph/distance.h"

#include <algorithm>

namespace qc::graph {

std::vector<int> BfsDistances(const Graph& g, int source) {
  std::vector<int> dist(g.num_vertices(), -1);
  std::vector<int> queue;
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int v = queue[head];
    for (int u : g.NeighborList(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

int ExactDiameter(const Graph& g) {
  if (g.num_vertices() == 0) return -1;
  int diameter = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::vector<int> dist = BfsDistances(g, v);
    for (int d : dist) {
      if (d < 0) return -1;  // Disconnected.
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

int DiameterTwoApprox(const Graph& g) {
  if (g.num_vertices() == 0) return -1;
  std::vector<int> dist = BfsDistances(g, 0);
  int ecc = 0;
  for (int d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace qc::graph
