#ifndef QC_GRAPH_COLORING_H_
#define QC_GRAPH_COLORING_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// True if `colors` (one entry per vertex, values in [0, k)) is proper.
bool IsProperColoring(const Graph& g, const std::vector<int>& colors);

/// Backtracking k-colouring with DSATUR-style most-saturated-first variable
/// order. Returns a proper colouring or nullopt.
std::optional<std::vector<int>> FindKColoring(const Graph& g, int k);

/// Greedy colouring in the given order; returns the colouring (upper bound
/// on the chromatic number is 1 + max colour used).
std::vector<int> GreedyColoring(const Graph& g, const std::vector<int>& order);

/// Exact chromatic number (tries k = 1, 2, ... with FindKColoring).
int ChromaticNumber(const Graph& g);

}  // namespace qc::graph

#endif  // QC_GRAPH_COLORING_H_
