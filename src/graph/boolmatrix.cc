#include "graph/boolmatrix.h"

namespace qc::graph {

BoolMatrix::BoolMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(rows, util::Bitset(cols)) {}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other) const {
  BoolMatrix c(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    const util::Bitset& row = data_[i];
    util::Bitset& out = c.data_[i];
    for (int k = row.NextSetBit(0); k >= 0; k = row.NextSetBit(k + 1)) {
      out |= other.data_[k];
    }
  }
  return c;
}

BoolMatrix BoolMatrix::FromGraph(const Graph& g) {
  BoolMatrix a(g.num_vertices(), g.num_vertices());
  for (auto [u, v] : g.Edges()) {
    a.Set(u, v);
    a.Set(v, u);
  }
  return a;
}

}  // namespace qc::graph
