#include "graph/boolmatrix.h"

#include "util/threadpool.h"

namespace qc::graph {

BoolMatrix::BoolMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(rows, util::Bitset(cols)) {}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other, int threads) const {
  BoolMatrix c(rows_, other.cols_);
  auto row_block = [this, &other, &c](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const util::Bitset& row = data_[i];
      util::Bitset& out = c.data_[i];
      for (int k = row.NextSetBit(0); k >= 0; k = row.NextSetBit(k + 1)) {
        out |= other.data_[k];
      }
    }
  };
  util::ThreadPool::Shared().ParallelFor(0, rows_, row_block, threads,
                                         /*min_grain=*/16);
  return c;
}

BoolMatrix BoolMatrix::FromGraph(const Graph& g) {
  BoolMatrix a(g.num_vertices(), g.num_vertices());
  for (auto [u, v] : g.Edges()) {
    a.Set(u, v);
    a.Set(v, u);
  }
  return a;
}

}  // namespace qc::graph
