#include "graph/boolmatrix.h"

#include <algorithm>

#include "kernels/boolmm.h"
#include "util/budget.h"
#include "util/threadpool.h"

namespace qc::graph {

namespace {

/// Row stride: enough words for `cols` bits, padded up to a multiple of 8
/// words so every row starts 64-byte aligned relative to the first.
std::size_t PaddedWordsPerRow(int cols) {
  const std::size_t used = (static_cast<std::size_t>(cols) + 63) / 64;
  return (used + 7) & ~std::size_t{7};
}

}  // namespace

BoolMatrix::BoolMatrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(PaddedWordsPerRow(cols)),
      words_(static_cast<std::size_t>(rows) * PaddedWordsPerRow(cols), 0u) {}

util::Bitset BoolMatrix::Row(int i) const {
  util::Bitset out(cols_);
  const std::uint64_t* src = RowWords(i);
  std::copy(src, src + out.words().size(), out.words().begin());
  return out;
}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other, int threads,
                                util::Budget* budget) const {
  BoolMatrix c(rows_, other.cols_);
  const std::size_t wn = other.words_per_row_;  // == c.words_per_row_
  auto row_block = [this, &other, &c, wn, budget](std::int64_t lo,
                                                  std::int64_t hi) {
    std::vector<int> ks;
    for (std::int64_t i = lo; i < hi; ++i) {
      if (budget != nullptr && budget->ChargeWork(1)) return;
      // Gather row i's set columns once, then OR the corresponding B rows
      // into the output in groups of 4 — quartering the dst read/write
      // traffic of the one-row-at-a-time loop.
      ks.clear();
      const std::uint64_t* row = RowWords(static_cast<int>(i));
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        std::uint64_t bits = row[w];
        while (bits != 0) {
          ks.push_back(static_cast<int>(w * 64) + __builtin_ctzll(bits));
          bits &= bits - 1;
        }
      }
      std::uint64_t* out = c.RowWords(static_cast<int>(i));
      std::size_t t = 0;
      for (; t + 4 <= ks.size(); t += 4) {
        kernels::OrWords4(out, other.RowWords(ks[t]),
                          other.RowWords(ks[t + 1]), other.RowWords(ks[t + 2]),
                          other.RowWords(ks[t + 3]), wn);
      }
      for (; t < ks.size(); ++t) {
        kernels::OrWords(out, other.RowWords(ks[t]), wn);
      }
    }
  };
  util::ThreadPool::Shared().ParallelFor(0, rows_, row_block, threads,
                                         /*min_grain=*/16, budget);
  return c;
}

BoolMatrix BoolMatrix::FromGraph(const Graph& g) {
  BoolMatrix a(g.num_vertices(), g.num_vertices());
  for (auto [u, v] : g.Edges()) {
    a.Set(u, v);
    a.Set(v, u);
  }
  return a;
}

}  // namespace qc::graph
