#ifndef QC_GRAPH_DISTANCE_H_
#define QC_GRAPH_DISTANCE_H_

#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// BFS distances from `source` (-1 for unreachable).
std::vector<int> BfsDistances(const Graph& g, int source);

/// Exact diameter via all-pairs BFS: O(nm). Returns -1 for an empty or
/// disconnected graph. This is the "easy problem" whose O(n^{2-eps})
/// inapproximability Roditty–Vassilevska Williams tie to SETH (cited in
/// Section 7's fine-grained list).
int ExactDiameter(const Graph& g);

/// Classic 2-approximation with a single BFS: returns an eccentricity e with
/// e <= diameter <= 2e. -1 on empty/disconnected graphs.
int DiameterTwoApprox(const Graph& g);

}  // namespace qc::graph

#endif  // QC_GRAPH_DISTANCE_H_
