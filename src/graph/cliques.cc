#include "graph/cliques.h"

#include <algorithm>

#include "graph/triangles.h"

namespace qc::graph {

namespace {

/// Extends `current` by vertices from `candidates` (ids ascending) until it
/// has k members. Returns true and leaves the clique in *current on success.
bool KCliqueSearch(const Graph& g, int k, std::vector<int>* current,
                   const util::Bitset& candidates) {
  if (static_cast<int>(current->size()) == k) return true;
  int needed = k - static_cast<int>(current->size());
  if (candidates.Count() < needed) return false;
  for (int v = candidates.NextSetBit(0); v >= 0;
       v = candidates.NextSetBit(v + 1)) {
    current->push_back(v);
    util::Bitset next = candidates;
    next &= g.Neighbors(v);
    // Only consider vertices after v to avoid permutations.
    for (int u = next.NextSetBit(0); u >= 0 && u <= v;
         u = next.NextSetBit(u + 1)) {
      next.Reset(u);
    }
    if (KCliqueSearch(g, k, current, next)) return true;
    current->pop_back();
  }
  return false;
}

void EnumerateSearch(const Graph& g, int k, std::vector<int>* current,
                     const util::Bitset& candidates,
                     std::vector<std::vector<int>>* out) {
  if (static_cast<int>(current->size()) == k) {
    out->push_back(*current);
    return;
  }
  for (int v = candidates.NextSetBit(0); v >= 0;
       v = candidates.NextSetBit(v + 1)) {
    current->push_back(v);
    util::Bitset next = candidates;
    next &= g.Neighbors(v);
    for (int u = next.NextSetBit(0); u >= 0 && u <= v;
         u = next.NextSetBit(u + 1)) {
      next.Reset(u);
    }
    EnumerateSearch(g, k, current, next, out);
    current->pop_back();
  }
}

void BronKerbosch(const Graph& g, util::Bitset r, util::Bitset p,
                  util::Bitset x, std::vector<int>* best) {
  if (p.Count() == 0 && x.Count() == 0) {
    if (r.Count() > static_cast<int>(best->size())) *best = r.ToVector();
    return;
  }
  if (r.Count() + p.Count() <= static_cast<int>(best->size())) return;
  // Pivot: vertex of P union X with the most neighbours in P.
  int pivot = -1, pivot_deg = -1;
  util::Bitset px = p;
  px |= x;
  for (int v = px.NextSetBit(0); v >= 0; v = px.NextSetBit(v + 1)) {
    int d = p.IntersectCount(g.Neighbors(v));
    if (d > pivot_deg) {
      pivot_deg = d;
      pivot = v;
    }
  }
  util::Bitset ext = p;
  if (pivot >= 0) {
    for (int v = g.Neighbors(pivot).NextSetBit(0); v >= 0;
         v = g.Neighbors(pivot).NextSetBit(v + 1)) {
      ext.Reset(v);
    }
  }
  for (int v = ext.NextSetBit(0); v >= 0; v = ext.NextSetBit(v + 1)) {
    util::Bitset r2 = r;
    r2.Set(v);
    util::Bitset p2 = p;
    p2 &= g.Neighbors(v);
    util::Bitset x2 = x;
    x2 &= g.Neighbors(v);
    BronKerbosch(g, r2, p2, x2, best);
    p.Reset(v);
    x.Set(v);
  }
}

}  // namespace

std::optional<std::vector<int>> FindKCliqueBruteForce(const Graph& g, int k) {
  if (k == 0) return std::vector<int>{};
  util::Bitset all(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) all.Set(v);
  std::vector<int> current;
  if (KCliqueSearch(g, k, &current, all)) return current;
  return std::nullopt;
}

std::uint64_t CountKCliques(const Graph& g, int k) {
  return EnumerateKCliques(g, k).size();
}

std::vector<std::vector<int>> EnumerateKCliques(const Graph& g, int k) {
  std::vector<std::vector<int>> out;
  if (k == 0) {
    out.push_back({});
    return out;
  }
  util::Bitset all(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) all.Set(v);
  std::vector<int> current;
  EnumerateSearch(g, k, &current, all, &out);
  return out;
}

std::optional<std::vector<int>> FindKCliqueNesetrilPoljak(const Graph& g,
                                                          int k) {
  if (k < 3) return FindKCliqueBruteForce(g, k);
  // Split k into three nearly equal parts.
  int q1 = k / 3, q2 = (k + 1) / 3, q3 = k - q1 - q2;
  int sizes[3] = {q1, q2, q3};
  // Auxiliary vertices: all cliques of each part size, tagged by part.
  struct AuxVertex {
    int part;
    std::vector<int> members;
    util::Bitset mask;
    util::Bitset common_nb;  // Intersection of member neighbourhoods.
  };
  std::vector<AuxVertex> aux;
  for (int part = 0; part < 3; ++part) {
    for (auto& c : EnumerateKCliques(g, sizes[part])) {
      AuxVertex av;
      av.part = part;
      av.mask = util::Bitset(g.num_vertices());
      av.common_nb = util::Bitset(g.num_vertices());
      for (int v = 0; v < g.num_vertices(); ++v) av.common_nb.Set(v);
      for (int v : c) {
        av.mask.Set(v);
        av.common_nb &= g.Neighbors(v);
      }
      av.members = std::move(c);
      aux.push_back(std::move(av));
    }
  }
  const int an = static_cast<int>(aux.size());
  Graph a(an);
  for (int i = 0; i < an; ++i) {
    for (int j = i + 1; j < an; ++j) {
      if (aux[i].part == aux[j].part) continue;
      // Join iff disjoint and fully cross-adjacent: j's members must all lie
      // in i's common neighbourhood (which excludes i's own members).
      if (aux[j].mask.IsSubsetOf(aux[i].common_nb)) a.AddEdge(i, j);
    }
  }
  auto t = FindTriangleMatrix(a);
  if (!t) return std::nullopt;
  std::vector<int> clique;
  for (int idx : *t) {
    clique.insert(clique.end(), aux[idx].members.begin(),
                  aux[idx].members.end());
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

std::vector<int> MaxClique(const Graph& g) {
  const int n = g.num_vertices();
  util::Bitset r(n), p(n), x(n);
  for (int v = 0; v < n; ++v) p.Set(v);
  std::vector<int> best;
  BronKerbosch(g, r, p, x, &best);
  std::sort(best.begin(), best.end());
  return best;
}

bool IsClique(const Graph& g, const std::vector<int>& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (!g.HasEdge(s[i], s[j])) return false;
    }
  }
  return true;
}

}  // namespace qc::graph
