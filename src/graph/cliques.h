#ifndef QC_GRAPH_CLIQUES_H_
#define QC_GRAPH_CLIQUES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace qc::graph {

/// Backtracking search for a k-clique (the n^k "brute force" whose ETH
/// optimality Theorem 6.3 asserts). Returns a sorted clique or nullopt.
std::optional<std::vector<int>> FindKCliqueBruteForce(const Graph& g, int k);

/// Number of k-cliques, by the same candidate-set backtracking.
std::uint64_t CountKCliques(const Graph& g, int k);

/// Nešetřil–Poljak: reduce k-clique to triangle detection on an auxiliary
/// graph whose vertices are ceil/floor(k/3)-cliques, then detect the triangle
/// with Boolean matrix multiplication (Section 8, the k-clique conjecture).
/// Requires k >= 3.
std::optional<std::vector<int>> FindKCliqueNesetrilPoljak(const Graph& g,
                                                          int k);

/// Maximum clique via Bron–Kerbosch with pivoting. Returns a sorted clique.
std::vector<int> MaxClique(const Graph& g);

/// True if `s` induces a complete subgraph.
bool IsClique(const Graph& g, const std::vector<int>& s);

/// All cliques of exactly size k (sorted vertex lists, lexicographic).
std::vector<std::vector<int>> EnumerateKCliques(const Graph& g, int k);

}  // namespace qc::graph

#endif  // QC_GRAPH_CLIQUES_H_
