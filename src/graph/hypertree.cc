#include "graph/hypertree.h"

#include <algorithm>

#include "util/lp.h"

namespace qc::graph {

std::optional<util::Fraction> FractionalHypertreeWidthOf(
    const Hypergraph& h, const TreeDecomposition& td) {
  util::Fraction width(0);
  for (const auto& bag : td.bags) {
    if (bag.empty()) continue;
    // min sum_e x_e subject to: every bag vertex fractionally covered.
    util::LpProblem lp;
    lp.num_vars = h.num_edges();
    lp.objective.assign(lp.num_vars, util::Fraction(1));
    for (int v : bag) {
      std::vector<util::Fraction> row(lp.num_vars, util::Fraction(0));
      bool any = false;
      for (int e : h.EdgesContaining(v)) {
        row[e] = util::Fraction(1);
        any = true;
      }
      if (!any) return std::nullopt;  // Uncoverable vertex.
      lp.AddRow(std::move(row), util::LpProblem::Sense::kGe,
                util::Fraction(1));
    }
    util::LpSolution sol = util::SolveLp(lp);
    if (sol.status != util::LpSolution::Status::kOptimal) return std::nullopt;
    if (width < sol.objective) width = sol.objective;
  }
  return width;
}

std::optional<TreeDecomposition> JoinTreeDecomposition(const Hypergraph& h) {
  std::vector<int> parent;
  if (!IsAlphaAcyclic(h, &parent)) return std::nullopt;
  TreeDecomposition td;
  const int m = h.num_edges();
  td.bags.reserve(m);
  for (int e = 0; e < m; ++e) td.bags.push_back(h.Edge(e));
  for (int e = 0; e < m; ++e) {
    if (parent[e] >= 0) td.edges.emplace_back(e, parent[e]);
  }
  // Vertices in no hyperedge get singleton bags hanging off the tree.
  std::vector<bool> covered(h.num_vertices(), false);
  for (const auto& e : h.Edges()) {
    for (int v : e) covered[v] = true;
  }
  for (int v = 0; v < h.num_vertices(); ++v) {
    if (covered[v]) continue;
    td.bags.push_back({v});
    int id = static_cast<int>(td.bags.size()) - 1;
    if (id > 0) td.edges.emplace_back(id, 0);
  }
  // Degenerate case: no edges at all and the loop above built a bag chain
  // rooted at bag 0 — already connected via the id > 0 links.
  if (td.Validate(h.PrimalGraph()).has_value()) return std::nullopt;
  return td;
}

std::optional<FhwUpperBound> HeuristicFractionalHypertreeWidth(
    const Hypergraph& h) {
  if (!h.CoversAllVertices() && h.num_edges() > 0) {
    // Mixed coverage is fine (singleton bags handle it below via the
    // elimination-order decompositions of the primal graph), but a vertex
    // in no edge makes bag covers infeasible only if it shows up in a
    // multi-vertex bag; elimination orders put it in singleton bags, and
    // the LP for a singleton uncovered vertex is infeasible — so report
    // failure for uncovered vertices to keep semantics crisp.
    return std::nullopt;
  }
  Graph primal = h.PrimalGraph();
  std::optional<FhwUpperBound> best;
  auto consider = [&](const TreeDecomposition& td) {
    auto width = FractionalHypertreeWidthOf(h, td);
    if (!width) return;
    if (!best || *width < best->width) best = FhwUpperBound{*width, td};
  };
  consider(DecompositionFromOrder(primal, MinDegreeOrder(primal)));
  consider(DecompositionFromOrder(primal, MinFillOrder(primal)));
  if (auto jt = JoinTreeDecomposition(h)) consider(*jt);
  return best;
}

}  // namespace qc::graph
