#include "graph/nice_decomposition.h"

#include <algorithm>
#include <climits>
#include <cstdlib>

namespace qc::graph {

namespace {

constexpr int kInf = INT_MAX / 4;
constexpr int kNegInf = INT_MIN / 4;

}  // namespace

int NiceTreeDecomposition::Width() const {
  int w = -1;
  for (const auto& node : nodes) {
    w = std::max(w, static_cast<int>(node.bag.size()) - 1);
  }
  return w;
}

std::optional<std::string> NiceTreeDecomposition::Validate(
    const Graph& g) const {
  if (nodes.empty()) return "empty decomposition";
  std::vector<bool> is_child(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    for (int c : node.children) {
      if (c < 0 || c >= static_cast<int>(i)) {
        return "child index not before parent";
      }
      is_child[c] = true;
    }
    auto minus = [](std::vector<int> a, int v) {
      a.erase(std::remove(a.begin(), a.end(), v), a.end());
      return a;
    };
    switch (node.type) {
      case NodeType::kLeaf:
        if (!node.bag.empty() || !node.children.empty()) {
          return "malformed leaf";
        }
        break;
      case NodeType::kIntroduce: {
        if (node.children.size() != 1) return "introduce needs one child";
        const Node& child = nodes[node.children[0]];
        if (!std::binary_search(node.bag.begin(), node.bag.end(),
                                node.vertex) ||
            minus(node.bag, node.vertex) != child.bag) {
          return "introduce bag mismatch";
        }
        break;
      }
      case NodeType::kForget: {
        if (node.children.size() != 1) return "forget needs one child";
        const Node& child = nodes[node.children[0]];
        if (std::binary_search(node.bag.begin(), node.bag.end(),
                               node.vertex) ||
            minus(child.bag, node.vertex) != node.bag) {
          return "forget bag mismatch";
        }
        break;
      }
      case NodeType::kJoin: {
        if (node.children.size() != 2) return "join needs two children";
        if (nodes[node.children[0]].bag != node.bag ||
            nodes[node.children[1]].bag != node.bag) {
          return "join bag mismatch";
        }
        break;
      }
    }
  }
  if (!nodes.back().bag.empty()) return "root bag not empty";
  // Exactly one root.
  int roots = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!is_child[i]) ++roots;
  }
  if (roots != 1) return "not a single tree";

  // Reduce to a plain TreeDecomposition and reuse its validator.
  TreeDecomposition td;
  td.bags.reserve(nodes.size());
  for (const auto& node : nodes) td.bags.push_back(node.bag);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int c : nodes[i].children) {
      td.edges.emplace_back(static_cast<int>(i), c);
    }
  }
  return td.Validate(g);
}

NiceTreeDecomposition NiceTreeDecomposition::FromTreeDecomposition(
    const TreeDecomposition& td, const Graph& g) {
  NiceTreeDecomposition out;
  if (td.bags.empty() || g.num_vertices() == 0) {
    out.nodes.push_back(Node{NodeType::kLeaf, {}, -1, {}});
    return out;
  }
  const int nb = static_cast<int>(td.bags.size());
  std::vector<std::vector<int>> adj(nb);
  for (auto [a, b] : td.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // Root at 0, children-before-parent order.
  std::vector<int> order, parent(nb, -1);
  std::vector<bool> seen(nb, false);
  order.push_back(0);
  seen[0] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (int u : adj[order[head]]) {
      if (!seen[u]) {
        seen[u] = true;
        parent[u] = order[head];
        order.push_back(u);
      }
    }
  }

  // Appends a chain of introduces starting from node `from` (bag `have`)
  // until the bag equals `want` (have must be a subset of want).
  auto introduce_chain = [&out](int from, std::vector<int> have,
                                const std::vector<int>& want) {
    for (int v : want) {
      if (std::binary_search(have.begin(), have.end(), v)) continue;
      have.insert(std::upper_bound(have.begin(), have.end(), v), v);
      out.nodes.push_back(Node{NodeType::kIntroduce, have, v, {from}});
      from = static_cast<int>(out.nodes.size()) - 1;
    }
    return from;
  };
  auto forget_chain = [&out](int from, std::vector<int> have,
                             const std::vector<int>& keep) {
    for (int v : std::vector<int>(have)) {
      if (std::binary_search(keep.begin(), keep.end(), v)) continue;
      have.erase(std::find(have.begin(), have.end(), v));
      out.nodes.push_back(Node{NodeType::kForget, have, v, {from}});
      from = static_cast<int>(out.nodes.size()) - 1;
    }
    return from;
  };

  // Build bottom-up: nice_of[t] = node index whose bag equals td.bags[t].
  std::vector<int> nice_of(nb, -1);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int t = *it;
    std::vector<int> kids;
    for (int u : adj[t]) {
      if (parent[u] == t) kids.push_back(u);
    }
    std::vector<int> tops;
    for (int c : kids) {
      // Morph the child's bag into bag(t): forget extras, introduce missing.
      int node = forget_chain(nice_of[c], td.bags[c], td.bags[t]);
      node = introduce_chain(node,
                             [&] {
                               std::vector<int> inter;
                               for (int v : td.bags[c]) {
                                 if (std::binary_search(td.bags[t].begin(),
                                                        td.bags[t].end(), v)) {
                                   inter.push_back(v);
                                 }
                               }
                               return inter;
                             }(),
                             td.bags[t]);
      tops.push_back(node);
    }
    if (tops.empty()) {
      out.nodes.push_back(Node{NodeType::kLeaf, {}, -1, {}});
      int node = static_cast<int>(out.nodes.size()) - 1;
      nice_of[t] = introduce_chain(node, {}, td.bags[t]);
    } else {
      int acc = tops[0];
      for (std::size_t i = 1; i < tops.size(); ++i) {
        out.nodes.push_back(
            Node{NodeType::kJoin, td.bags[t], -1, {acc, tops[i]}});
        acc = static_cast<int>(out.nodes.size()) - 1;
      }
      nice_of[t] = acc;
    }
  }
  // Forget the root bag down to empty.
  int top = forget_chain(nice_of[0], td.bags[0], {});
  if (out.nodes[top].bag.empty() &&
      top != static_cast<int>(out.nodes.size()) - 1) {
    std::abort();  // forget_chain always appends; top must be last.
  }
  if (!out.nodes.back().bag.empty()) {
    // Root bag was already empty and no forgets were added; ensure root is
    // the last node (it is, by construction order).
    std::abort();
  }
  return out;
}

namespace {

int PositionOf(const std::vector<int>& bag, int v) {
  return static_cast<int>(
      std::lower_bound(bag.begin(), bag.end(), v) - bag.begin());
}

}  // namespace

int MaxIndependentSetTreewidth(const Graph& g,
                               const NiceTreeDecomposition& ntd,
                               std::vector<int>* witness) {
  const auto& nodes = ntd.nodes;
  // dp[i][mask]: best |I| over the subtree with I-cap-bag given by mask.
  std::vector<std::vector<int>> dp(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    const int bsize = static_cast<int>(node.bag.size());
    dp[i].assign(1u << bsize, kNegInf);
    switch (node.type) {
      case NiceTreeDecomposition::NodeType::kLeaf:
        dp[i][0] = 0;
        break;
      case NiceTreeDecomposition::NodeType::kIntroduce: {
        int child = node.children[0];
        int pos = PositionOf(node.bag, node.vertex);
        // Mask of bag neighbours of the introduced vertex.
        unsigned nb_mask = 0;
        for (int j = 0; j < bsize; ++j) {
          if (node.bag[j] != node.vertex &&
              g.HasEdge(node.bag[j], node.vertex)) {
            nb_mask |= 1u << j;
          }
        }
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          // Child mask: drop bit `pos`.
          unsigned low = m & ((1u << pos) - 1u);
          unsigned high = (m >> (pos + 1)) << pos;
          unsigned cm = low | high;
          if ((m >> pos) & 1u) {
            if (m & nb_mask) continue;  // v adjacent to selected vertex.
            if (dp[child][cm] > kNegInf) dp[i][m] = dp[child][cm] + 1;
          } else {
            dp[i][m] = dp[child][cm];
          }
        }
        break;
      }
      case NiceTreeDecomposition::NodeType::kForget: {
        int child = node.children[0];
        const auto& cbag = nodes[child].bag;
        int pos = PositionOf(cbag, node.vertex);
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          unsigned low = m & ((1u << pos) - 1u);
          unsigned high = (m >> pos) << (pos + 1);
          unsigned without = low | high;
          unsigned with = without | (1u << pos);
          dp[i][m] = std::max(dp[child][without], dp[child][with]);
        }
        break;
      }
      case NiceTreeDecomposition::NodeType::kJoin: {
        int c1 = node.children[0], c2 = node.children[1];
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          if (dp[c1][m] > kNegInf && dp[c2][m] > kNegInf) {
            dp[i][m] = dp[c1][m] + dp[c2][m] - __builtin_popcount(m);
          }
        }
        break;
      }
    }
  }
  int best = dp[ntd.root()][0];

  if (witness != nullptr) {
    witness->clear();
    // Top-down replay: track the chosen mask at each node; collect a vertex
    // when its forget node chose the "selected" child mask.
    std::vector<unsigned> chosen(nodes.size(), 0);
    std::vector<bool> active(nodes.size(), false);
    active[ntd.root()] = true;
    chosen[ntd.root()] = 0;
    for (int i = ntd.root(); i >= 0; --i) {
      if (!active[i]) continue;
      const auto& node = nodes[i];
      unsigned m = chosen[i];
      switch (node.type) {
        case NiceTreeDecomposition::NodeType::kLeaf:
          break;
        case NiceTreeDecomposition::NodeType::kIntroduce: {
          int pos = PositionOf(node.bag, node.vertex);
          unsigned low = m & ((1u << pos) - 1u);
          unsigned high = (m >> (pos + 1)) << pos;
          active[node.children[0]] = true;
          chosen[node.children[0]] = low | high;
          break;
        }
        case NiceTreeDecomposition::NodeType::kForget: {
          const auto& cbag = nodes[node.children[0]].bag;
          int pos = PositionOf(cbag, node.vertex);
          unsigned low = m & ((1u << pos) - 1u);
          unsigned high = (m >> pos) << (pos + 1);
          unsigned without = low | high;
          unsigned with = without | (1u << pos);
          active[node.children[0]] = true;
          if (dp[node.children[0]][with] >= dp[node.children[0]][without]) {
            chosen[node.children[0]] = with;
            witness->push_back(node.vertex);
          } else {
            chosen[node.children[0]] = without;
          }
          break;
        }
        case NiceTreeDecomposition::NodeType::kJoin:
          active[node.children[0]] = true;
          active[node.children[1]] = true;
          chosen[node.children[0]] = m;
          chosen[node.children[1]] = m;
          break;
      }
    }
    std::sort(witness->begin(), witness->end());
  }
  return best;
}

namespace {

/// Base-3 colouring helpers for the dominating-set DP.
/// Colours: 0 = black (in the set), 1 = white (dominated), 2 = grey
/// (no requirement yet; cannot be forgotten).
int Digit(unsigned code, int pos) {
  static const unsigned kPow3[] = {1,     3,     9,     27,    81,   243,
                                   729,   2187,  6561,  19683, 59049};
  return static_cast<int>(code / kPow3[pos] % 3);
}

unsigned SetDigit(unsigned code, int pos, int value) {
  static const unsigned kPow3[] = {1,     3,     9,     27,    81,   243,
                                   729,   2187,  6561,  19683, 59049};
  int old = Digit(code, pos);
  return code + static_cast<unsigned>(value - old) * kPow3[pos];
}

unsigned Pow3(int e) {
  unsigned r = 1;
  for (int i = 0; i < e; ++i) r *= 3;
  return r;
}

/// Removes the base-3 digit at `pos` (shifting higher digits down).
unsigned DropDigit(unsigned code, int pos) {
  unsigned p = Pow3(pos);
  unsigned low = code % p;
  unsigned high = code / (p * 3);
  return low + high * p;
}

/// Inserts digit `value` at `pos`.
unsigned InsertDigit(unsigned code, int pos, int value) {
  unsigned p = Pow3(pos);
  unsigned low = code % p;
  unsigned high = code / p;
  return low + static_cast<unsigned>(value) * p + high * (p * 3);
}

}  // namespace

int MinDominatingSetTreewidth(const Graph& g,
                              const NiceTreeDecomposition& ntd) {
  if (g.num_vertices() == 0) return 0;
  const auto& nodes = ntd.nodes;
  if (ntd.Width() > 9) std::abort();  // 3^10 table rows per node at most.
  std::vector<std::vector<int>> dp(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    const int bsize = static_cast<int>(node.bag.size());
    dp[i].assign(Pow3(bsize), kInf);
    switch (node.type) {
      case NiceTreeDecomposition::NodeType::kLeaf:
        dp[i][0] = 0;
        break;
      case NiceTreeDecomposition::NodeType::kIntroduce: {
        int child = node.children[0];
        int pos = PositionOf(node.bag, node.vertex);
        // Bag neighbours of v, as child positions.
        std::vector<int> nb_child_pos;
        for (int j = 0; j < bsize; ++j) {
          if (node.bag[j] != node.vertex &&
              g.HasEdge(node.bag[j], node.vertex)) {
            nb_child_pos.push_back(j > pos ? j - 1 : j);
          }
        }
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          int cv = Digit(m, pos);
          unsigned cm = DropDigit(m, pos);
          if (cv == 0) {
            // v black: its white bag-neighbours may owe their domination to
            // v alone, so relax them to grey in the child (monotone: grey
            // never costs more).
            unsigned relaxed = cm;
            for (int cp : nb_child_pos) {
              if (Digit(relaxed, cp) == 1) relaxed = SetDigit(relaxed, cp, 2);
            }
            if (dp[child][relaxed] < kInf) dp[i][m] = dp[child][relaxed] + 1;
          } else if (cv == 1) {
            // v white: at introduction all of v's subtree neighbours are in
            // the bag, so a black bag-neighbour must exist.
            bool dominated = false;
            for (int j = 0; j < bsize && !dominated; ++j) {
              if (node.bag[j] != node.vertex && Digit(m, j) == 0 &&
                  g.HasEdge(node.bag[j], node.vertex)) {
                dominated = true;
              }
            }
            if (dominated) dp[i][m] = dp[child][cm];
          } else {
            dp[i][m] = dp[child][cm];
          }
        }
        break;
      }
      case NiceTreeDecomposition::NodeType::kForget: {
        int child = node.children[0];
        const auto& cbag = nodes[child].bag;
        int pos = PositionOf(cbag, node.vertex);
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          unsigned black = InsertDigit(m, pos, 0);
          unsigned white = InsertDigit(m, pos, 1);
          dp[i][m] = std::min(dp[child][black], dp[child][white]);
        }
        break;
      }
      case NiceTreeDecomposition::NodeType::kJoin: {
        int c1 = node.children[0], c2 = node.children[1];
        for (unsigned m = 0; m < dp[i].size(); ++m) {
          // White positions: the domination duty goes to one side (the
          // other side gets grey). Blacks and greys match on both sides.
          std::vector<int> whites;
          int blacks = 0;
          for (int j = 0; j < bsize; ++j) {
            int d = Digit(m, j);
            if (d == 1) whites.push_back(j);
            if (d == 0) ++blacks;
          }
          int best = kInf;
          for (unsigned split = 0; split < (1u << whites.size()); ++split) {
            unsigned m1 = m, m2 = m;
            for (std::size_t w = 0; w < whites.size(); ++w) {
              if ((split >> w) & 1u) {
                m2 = SetDigit(m2, whites[w], 2);
              } else {
                m1 = SetDigit(m1, whites[w], 2);
              }
            }
            if (dp[c1][m1] < kInf && dp[c2][m2] < kInf) {
              best = std::min(best, dp[c1][m1] + dp[c2][m2] - blacks);
            }
          }
          dp[i][m] = best;
        }
        break;
      }
    }
  }
  return dp[ntd.root()][0];
}

}  // namespace qc::graph
