#include "reductions/domset_reduction.h"

#include <algorithm>
#include <cstdlib>

namespace qc::reductions {

std::vector<int> DomSetReduction::ExtractDominatingSet(
    const std::vector<int>& assignment) const {
  std::vector<int> set(assignment.begin(), assignment.begin() + t);
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

DomSetReduction CspFromDominatingSet(const graph::Graph& g, int t,
                                     int group_size) {
  const int n = g.num_vertices();
  if (t < 1 || group_size < 1) std::abort();
  DomSetReduction red;
  red.t = t;
  red.group_size = group_size;

  // Code domain t^group_size for the packed witness variables.
  long long codes = 1;
  for (int i = 0; i < group_size; ++i) {
    codes *= t;
    if (codes > 1'000'000) std::abort();  // Unreasonable packing.
  }
  const int num_groups = (n + group_size - 1) / group_size;

  csp::CspInstance& csp = red.csp;
  csp.num_vars = t + num_groups;
  csp.domain_size = std::max<long long>(n, codes);

  // Digit of `code` at `pos` in base t.
  auto digit = [t](long long code, int pos) {
    for (int i = 0; i < pos; ++i) code /= t;
    return static_cast<int>(code % t);
  };

  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < n; ++j) {
      int group = j / group_size;
      int pos = j % group_size;
      csp::Relation rel(2);
      for (long long code = 0; code < codes; ++code) {
        if (digit(code, pos) != i) {
          // Some other selector is responsible for j: any vertex works.
          for (int a = 0; a < n; ++a) {
            rel.Add({a, static_cast<int>(code)});
          }
        } else {
          // Selector i must dominate j.
          for (int a : g.NeighborList(j)) {
            rel.Add({a, static_cast<int>(code)});
          }
          rel.Add({j, static_cast<int>(code)});
        }
      }
      csp.AddConstraint({i, t + group}, std::move(rel));
    }
  }
  return red;
}

}  // namespace qc::reductions
