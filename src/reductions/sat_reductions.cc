#include "reductions/sat_reductions.h"

#include <cstdlib>

namespace qc::reductions {

csp::CspInstance CspFromSat(const sat::CnfFormula& f) {
  csp::CspInstance csp;
  csp.num_vars = f.num_vars;
  csp.domain_size = 2;
  for (const auto& clause : f.clauses) {
    std::vector<int> scope;
    scope.reserve(clause.size());
    for (sat::Lit l : clause) scope.push_back((l > 0 ? l : -l) - 1);
    const int r = static_cast<int>(clause.size());
    csp::Relation rel(r);
    // Allow every 0/1 tuple that satisfies the clause.
    for (std::uint32_t mask = 0; mask < (1u << r); ++mask) {
      bool sat = false;
      for (int i = 0; i < r && !sat; ++i) {
        bool value = (mask >> i) & 1u;
        sat = (clause[i] > 0) == value;
      }
      if (!sat) continue;
      std::vector<int> tuple(r);
      for (int i = 0; i < r; ++i) tuple[i] = (mask >> i) & 1u;
      rel.Add(std::move(tuple));
    }
    csp.AddConstraint(std::move(scope), std::move(rel));
  }
  return csp;
}

std::vector<bool> ThreeColoringReduction::DecodeAssignment(
    const std::vector<int>& coloring) const {
  std::vector<bool> assignment(positive_vertex.size());
  for (std::size_t i = 0; i < positive_vertex.size(); ++i) {
    assignment[i] = coloring[positive_vertex[i]] == coloring[true_vertex];
  }
  return assignment;
}

ThreeColoringReduction ThreeColoringFromSat(const sat::CnfFormula& f) {
  ThreeColoringReduction red;
  const int n = f.num_vars;
  // Vertex budget: palette triangle, two literal vertices per variable, and
  // one 3-vertex OR gadget per clause literal beyond the first — O(n + m).
  int total = 3 + 2 * n;
  for (const auto& clause : f.clauses) {
    if (clause.empty() || clause.size() > 3) std::abort();
    total += 3 * (static_cast<int>(clause.size()) - 1);
  }
  graph::Graph g(total);
  int next_free = 3 + 2 * n;

  // Palette triangle: 0 = T, 1 = F, 2 = B.
  red.true_vertex = 0;
  red.false_vertex = 1;
  red.base_vertex = 2;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  // Variable gadgets: x_i at 3 + 2i, !x_i next to it; both tied to B so
  // literal vertices take colours T/F, complementary within the pair.
  red.positive_vertex.resize(n);
  red.negative_vertex.resize(n);
  for (int i = 0; i < n; ++i) {
    int pos = 3 + 2 * i, neg = pos + 1;
    red.positive_vertex[i] = pos;
    red.negative_vertex[i] = neg;
    g.AddEdge(pos, neg);
    g.AddEdge(pos, red.base_vertex);
    g.AddEdge(neg, red.base_vertex);
  }
  auto literal_vertex = [&red](sat::Lit l) {
    int v = l > 0 ? l : -l;
    return l > 0 ? red.positive_vertex[v - 1] : red.negative_vertex[v - 1];
  };
  // OR gadget on inputs a, b with fresh vertices p, q, o: if a and b are
  // both F then o is forced to F; if either is T then o can be coloured T.
  auto or_gadget = [&g, &next_free](int a, int b) {
    int p = next_free++, q = next_free++, o = next_free++;
    g.AddEdge(p, a);
    g.AddEdge(q, b);
    g.AddEdge(p, q);
    g.AddEdge(p, o);
    g.AddEdge(q, o);
    return o;
  };
  for (const auto& clause : f.clauses) {
    int out = literal_vertex(clause[0]);
    for (std::size_t i = 1; i < clause.size(); ++i) {
      out = or_gadget(out, literal_vertex(clause[i]));
    }
    // Force the clause output to colour T.
    g.AddEdge(out, red.false_vertex);
    g.AddEdge(out, red.base_vertex);
  }
  red.graph = std::move(g);
  return red;
}

}  // namespace qc::reductions
