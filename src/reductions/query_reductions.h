#ifndef QC_REDUCTIONS_QUERY_REDUCTIONS_H_
#define QC_REDUCTIONS_QUERY_REDUCTIONS_H_

#include <map>
#include <string>

#include "csp/csp.h"
#include "db/database.h"

namespace qc::reductions {

/// The Section 2.2 correspondence, query side -> CSP side: variables are the
/// query's attributes, the domain is the set of values occurring in the
/// database, one constraint per atom. Solutions are in bijection with the
/// answer tuples Q(D).
struct QueryToCspReduction {
  csp::CspInstance csp;
  std::vector<std::string> attributes;    ///< CSP variable i's attribute.
  std::vector<db::Value> domain_values;   ///< CSP value d's database value.

  /// Converts a CSP solution back to an answer tuple over `attributes`.
  db::Tuple DecodeTuple(const std::vector<int>& assignment) const;
};

QueryToCspReduction CspFromJoinQuery(const db::JoinQuery& query,
                                     const db::Database& db);

/// The reverse direction: a CSP instance as a join query plus database.
/// Constraint i becomes relation "C<i>" with attributes "v<j>" per scope
/// variable; variables outside every constraint get a unary "domain" atom so
/// the answer schema covers all variables.
struct CspToQueryReduction {
  db::JoinQuery query;
  db::Database db;

  /// Converts an answer tuple (aligned with query.AttributeOrder()) back to
  /// a CSP assignment.
  std::vector<int> DecodeAssignment(const db::Tuple& tuple) const;

  int num_vars = 0;
};

CspToQueryReduction JoinQueryFromCsp(const csp::CspInstance& csp);

}  // namespace qc::reductions

#endif  // QC_REDUCTIONS_QUERY_REDUCTIONS_H_
