#ifndef QC_REDUCTIONS_CLIQUE_REDUCTIONS_H_
#define QC_REDUCTIONS_CLIQUE_REDUCTIONS_H_

#include "csp/csp.h"
#include "graph/graph.h"

namespace qc::reductions {

/// The parameterized reduction of Section 5: finding a k-clique in G becomes
/// a binary CSP with k variables, C(k,2) constraints, and domain V(G). The
/// constraint relation is G's (symmetric) adjacency, so any solution picks k
/// pairwise-adjacent (hence distinct) vertices.
csp::CspInstance CspFromClique(const graph::Graph& g, int k);

/// Reads the clique back out of a CSP solution (the first k variables, for
/// both CspFromClique and SpecialCspFromClique solutions).
std::vector<int> ExtractClique(const std::vector<int>& assignment, int k);

/// The Special CSP reduction of Definition 4.3 / Section 5: the clique CSP
/// plus 2^k dummy variables chained by always-satisfied constraints, so the
/// primal graph is exactly a k-clique plus a path on 2^k vertices. The
/// instance has k + 2^k variables and is solvable iff G has a k-clique.
/// k must be small enough for 2^k variables to be constructed (k <= 20).
csp::CspInstance SpecialCspFromClique(const graph::Graph& g, int k);

/// Binary CSP whose solutions are the homomorphisms from H to G: one
/// adjacency constraint per edge of H (Section 2.3, same symmetric relation
/// in every constraint).
csp::CspInstance CspFromGraphHomomorphism(const graph::Graph& h,
                                          const graph::Graph& g);

}  // namespace qc::reductions

#endif  // QC_REDUCTIONS_CLIQUE_REDUCTIONS_H_
