#ifndef QC_REDUCTIONS_SAT_REDUCTIONS_H_
#define QC_REDUCTIONS_SAT_REDUCTIONS_H_

#include "csp/csp.h"
#include "graph/graph.h"
#include "sat/cnf.h"

namespace qc::reductions {

/// Corollary 6.1: a CNF formula as a CSP with |D| = 2 and one constraint of
/// arity <= max clause size per clause. Variable i of the CSP is SAT
/// variable i+1; value 1 = true.
csp::CspInstance CspFromSat(const sat::CnfFormula& f);

/// Bookkeeping for the 3SAT -> 3-Colouring reduction (Corollary 6.2).
struct ThreeColoringReduction {
  graph::Graph graph;
  int true_vertex;   ///< The palette triangle: colour(true_vertex) = "T".
  int false_vertex;
  int base_vertex;   ///< The "B"/neutral colour.
  std::vector<int> positive_vertex;  ///< Per SAT variable: its literal vertex.
  std::vector<int> negative_vertex;  ///< Per SAT variable: negated literal.

  /// Decodes a proper 3-colouring into a satisfying assignment.
  std::vector<bool> DecodeAssignment(const std::vector<int>& coloring) const;
};

/// The textbook 3SAT -> 3-Colouring reduction discussed after Hypothesis 2:
/// O(n + m) vertices and edges. The formula is satisfiable iff the graph is
/// 3-colourable. Clauses must have 1..3 literals.
ThreeColoringReduction ThreeColoringFromSat(const sat::CnfFormula& f);

}  // namespace qc::reductions

#endif  // QC_REDUCTIONS_SAT_REDUCTIONS_H_
