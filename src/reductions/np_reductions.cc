#include "reductions/np_reductions.h"

#include <algorithm>

namespace qc::reductions {

CliqueFromSatReduction CliqueFromSat(const sat::CnfFormula& f) {
  CliqueFromSatReduction red;
  red.target_clique_size = static_cast<int>(f.clauses.size());
  for (int ci = 0; ci < static_cast<int>(f.clauses.size()); ++ci) {
    for (sat::Lit l : f.clauses[ci]) {
      red.vertex_literal.emplace_back(ci, l);
    }
  }
  const int n = static_cast<int>(red.vertex_literal.size());
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [ci, li] = red.vertex_literal[i];
      auto [cj, lj] = red.vertex_literal[j];
      if (ci != cj && li != -lj) g.AddEdge(i, j);
    }
  }
  red.graph = std::move(g);
  return red;
}

std::vector<bool> CliqueFromSatReduction::DecodeAssignment(
    const std::vector<int>& clique, int num_vars) const {
  std::vector<bool> assignment(num_vars, false);
  for (int v : clique) {
    sat::Lit l = vertex_literal[v].second;
    int var = l > 0 ? l : -l;
    assignment[var - 1] = l > 0;
  }
  return assignment;
}

graph::Graph ComplementGraph(const graph::Graph& g) { return g.Complement(); }

std::vector<int> ComplementVertexSet(const graph::Graph& g,
                                     const std::vector<int>& s) {
  std::vector<bool> in(g.num_vertices(), false);
  for (int v : s) in[v] = true;
  std::vector<int> out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!in[v]) out.push_back(v);
  }
  return out;
}

}  // namespace qc::reductions
