#include "reductions/query_reductions.h"

#include <algorithm>
#include <set>

namespace qc::reductions {

db::Tuple QueryToCspReduction::DecodeTuple(
    const std::vector<int>& assignment) const {
  db::Tuple tuple;
  tuple.reserve(assignment.size());
  for (int v : assignment) tuple.push_back(domain_values[v]);
  return tuple;
}

QueryToCspReduction CspFromJoinQuery(const db::JoinQuery& query,
                                     const db::Database& db) {
  QueryToCspReduction red;
  red.attributes = query.AttributeOrder();
  // Active domain: every value occurring in a referenced relation.
  std::set<db::Value> values;
  for (const auto& atom : query.atoms) {
    for (const auto& t : db.Tuples(atom.relation)) {
      values.insert(t.begin(), t.end());
    }
  }
  red.domain_values.assign(values.begin(), values.end());
  std::map<db::Value, int> value_id;
  for (int i = 0; i < static_cast<int>(red.domain_values.size()); ++i) {
    value_id[red.domain_values[i]] = i;
  }
  std::map<std::string, int> attr_id = query.AttributeIndex();

  red.csp.num_vars = static_cast<int>(red.attributes.size());
  red.csp.domain_size = static_cast<int>(red.domain_values.size());
  for (const auto& atom : query.atoms) {
    std::vector<int> scope;
    scope.reserve(atom.attributes.size());
    for (const auto& a : atom.attributes) scope.push_back(attr_id[a]);
    csp::Relation rel(static_cast<int>(atom.attributes.size()));
    for (const auto& t : db.Tuples(atom.relation)) {
      std::vector<int> encoded;
      encoded.reserve(t.size());
      for (db::Value v : t) encoded.push_back(value_id[v]);
      rel.Add(std::move(encoded));
    }
    red.csp.AddConstraint(std::move(scope), std::move(rel));
  }
  return red;
}

std::vector<int> CspToQueryReduction::DecodeAssignment(
    const db::Tuple& tuple) const {
  std::vector<std::string> order = query.AttributeOrder();
  std::vector<int> assignment(num_vars, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    // Attribute names are "v<j>".
    int var = std::stoi(order[i].substr(1));
    assignment[var] = static_cast<int>(tuple[i]);
  }
  return assignment;
}

CspToQueryReduction JoinQueryFromCsp(const csp::CspInstance& csp) {
  CspToQueryReduction red;
  red.num_vars = csp.num_vars;
  auto attr_name = [](int v) { return "v" + std::to_string(v); };

  std::vector<bool> constrained(csp.num_vars, false);
  for (int ci = 0; ci < static_cast<int>(csp.constraints.size()); ++ci) {
    const auto& c = csp.constraints[ci];
    std::vector<std::string> attrs;
    attrs.reserve(c.scope.size());
    for (int v : c.scope) {
      attrs.push_back(attr_name(v));
      constrained[v] = true;
    }
    std::string rel_name = "C" + std::to_string(ci);
    std::vector<db::Tuple> tuples;
    tuples.reserve(c.relation.tuples().size());
    for (const auto& t : c.relation.tuples()) {
      tuples.emplace_back(t.begin(), t.end());
    }
    red.db.SetRelation(rel_name, c.relation.arity(), std::move(tuples));
    red.query.Add(rel_name, std::move(attrs));
  }
  // Unconstrained variables get the full unary domain atom so the answer
  // schema covers every variable.
  bool dom_created = false;
  for (int v = 0; v < csp.num_vars; ++v) {
    if (constrained[v]) continue;
    if (!dom_created) {
      std::vector<db::Tuple> all;
      all.reserve(csp.domain_size);
      for (int d = 0; d < csp.domain_size; ++d) {
        all.push_back({static_cast<db::Value>(d)});
      }
      red.db.SetRelation("Dom", 1, std::move(all));
      dom_created = true;
    }
    red.query.Add("Dom", {attr_name(v)});
  }
  return red;
}

}  // namespace qc::reductions
