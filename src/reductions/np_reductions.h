#ifndef QC_REDUCTIONS_NP_REDUCTIONS_H_
#define QC_REDUCTIONS_NP_REDUCTIONS_H_

#include "graph/graph.h"
#include "sat/cnf.h"

namespace qc::reductions {

/// The classic Karp reduction behind the NP-hardness workhorse of Section
/// 4: a CNF formula with m clauses becomes a graph whose k-cliques (k = m)
/// are exactly the consistent ways of picking one satisfied literal per
/// clause. One vertex per (clause, literal) occurrence; edges between
/// occurrences from different clauses whose literals are not complementary.
struct CliqueFromSatReduction {
  graph::Graph graph;
  int target_clique_size = 0;           ///< k = number of clauses.
  std::vector<std::pair<int, sat::Lit>> vertex_literal;  ///< Per vertex:
                                        ///< (clause index, literal).

  /// Decodes a k-clique into a (partial) satisfying assignment; unforced
  /// variables default to false.
  std::vector<bool> DecodeAssignment(const std::vector<int>& clique,
                                     int num_vars) const;
};
CliqueFromSatReduction CliqueFromSat(const sat::CnfFormula& f);

/// Complementation identities of Section 5's Vertex Cover / Clique /
/// Independent Set triangle: G has a vertex cover of size <= k iff its
/// complement... precisely: S is a vertex cover of G iff V \ S is an
/// independent set of G iff V \ S is a clique of the complement of G.
/// These helpers make the identities executable.
graph::Graph ComplementGraph(const graph::Graph& g);

/// V \ s.
std::vector<int> ComplementVertexSet(const graph::Graph& g,
                                     const std::vector<int>& s);

}  // namespace qc::reductions

#endif  // QC_REDUCTIONS_NP_REDUCTIONS_H_
