#include "reductions/clique_reductions.h"

#include <cstdlib>

namespace qc::reductions {

namespace {

csp::Relation AdjacencyRelation(const graph::Graph& g) {
  csp::Relation rel(2);
  for (auto [u, v] : g.Edges()) {
    rel.Add({u, v});
    rel.Add({v, u});
  }
  rel.Seal();
  return rel;
}

csp::Relation FullRelation(int domain_size) {
  csp::Relation rel(2);
  for (int a = 0; a < domain_size; ++a) {
    for (int b = 0; b < domain_size; ++b) rel.Add({a, b});
  }
  rel.Seal();
  return rel;
}

}  // namespace

csp::CspInstance CspFromClique(const graph::Graph& g, int k) {
  csp::CspInstance csp;
  csp.num_vars = k;
  csp.domain_size = g.num_vertices();
  csp::Relation adjacency = AdjacencyRelation(g);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      csp.AddConstraint({i, j}, adjacency);
    }
  }
  return csp;
}

std::vector<int> ExtractClique(const std::vector<int>& assignment, int k) {
  return std::vector<int>(assignment.begin(), assignment.begin() + k);
}

csp::CspInstance SpecialCspFromClique(const graph::Graph& g, int k) {
  if (k < 1 || k > 20) std::abort();
  csp::CspInstance csp = CspFromClique(g, k);
  const long long path_len = 1LL << k;
  csp.num_vars = k + static_cast<int>(path_len);
  // Chain the dummy variables with always-satisfied binary constraints so
  // the primal graph gains exactly a path on 2^k fresh vertices.
  csp::Relation full = FullRelation(csp.domain_size);
  for (int i = 0; i + 1 < path_len; ++i) {
    csp.AddConstraint({k + i, k + i + 1}, full);
  }
  return csp;
}

csp::CspInstance CspFromGraphHomomorphism(const graph::Graph& h,
                                          const graph::Graph& g) {
  csp::CspInstance csp;
  csp.num_vars = h.num_vertices();
  csp.domain_size = g.num_vertices();
  csp::Relation adjacency = AdjacencyRelation(g);
  for (auto [u, v] : h.Edges()) csp.AddConstraint({u, v}, adjacency);
  return csp;
}

}  // namespace qc::reductions
