#ifndef QC_REDUCTIONS_DOMSET_REDUCTION_H_
#define QC_REDUCTIONS_DOMSET_REDUCTION_H_

#include "csp/csp.h"
#include "graph/graph.h"

namespace qc::reductions {

/// The reduction in the proof of Theorem 7.2: t-Dominating-Set on an
/// n-vertex graph becomes a binary CSP whose primal graph is complete
/// bipartite between t "selector" variables and ceil(n/group_size)
/// "witness-group" variables — treewidth at most t.
///
/// Selector s_i takes a vertex of G; the witness for vertex j says which
/// selector dominates j. With group_size = g, g witnesses are packed into
/// one variable over the code domain t^g (the D -> D^g domain-squaring step
/// of the proof).
struct DomSetReduction {
  csp::CspInstance csp;
  int t = 0;           ///< Number of selector variables (first t vars).
  int group_size = 1;

  /// The selected dominating set from a CSP solution.
  std::vector<int> ExtractDominatingSet(
      const std::vector<int>& assignment) const;
};

DomSetReduction CspFromDominatingSet(const graph::Graph& g, int t,
                                     int group_size = 1);

}  // namespace qc::reductions

#endif  // QC_REDUCTIONS_DOMSET_REDUCTION_H_
