#ifndef QC_UTIL_RUN_REPORT_H_
#define QC_UTIL_RUN_REPORT_H_

#include <cstdint>
#include <string>

#include "util/budget.h"
#include "util/counters.h"
#include "util/trace.h"

namespace qc::util {

class JsonWriter;

/// Machine-readable record of one run: how it ended, what it spent, and
/// where the time went. One JSON serializer — Emit(JsonWriter&) — shared by
/// query_cli and fpt_toolbox (`--report-json <file>`), the experiment
/// harnesses, and qc_serverd's per-request reports, so every tool in the
/// repo emits the same schema (checked in CI by
/// tools/check_report_schema.py).
///
/// JSON shape:
///   {
///     "tool": "query_cli",
///     "status": "completed",          // util::ToString(RunStatus)
///     "exit_code": 0,                 // util::ExitCode(status)
///     "threads": 1,
///     "wall_ms": 12.5,
///     "budget": { "deadline_armed": false, "work_used": 0, "work_limit": 0,
///                 "rows_used": 4, "row_limit": 0 },
///     "cache":  { "enabled": false, "hits": 0, "misses": 0, "evictions": 0,
///                 "bytes": 0, "capacity_bytes": 0, "entries": 0 },
///     "stats":  { "simd_level": "avx512",   // dispatched kernel level
///                 "arena_high_water_bytes": 0 },
///     "counters": { "generic_join.nodes": 10, ... },  // monotonic keys
///     "gauges":   { "threads": 8, ... },              // level keys
///     "spans": [ { "name": "generic_join", "count": 1, "total_ms": 12.1,
///                  "children": [ ... ] } ],           // sorted by name
///     "server": { "request_id": 7, "queue_ms": 0.3,   // only when the run
///                 "snapshot_epoch": 12 },             // was served by
///                                                     // qc_serverd
///     "planner": { "pattern": "triangle", ... },      // only when the
///                                                     // hybrid planner
///                                                     // examined the query
///     "ivm": { "views": 1, "updates": 9, ... }  // only when the serving
///   }                                           // process maintains views
struct RunReport {
  std::string tool;
  RunStatus status = RunStatus::kCompleted;
  int threads = 1;
  double wall_ms = 0.0;

  struct BudgetUsage {
    bool deadline_armed = false;
    std::uint64_t work_used = 0;
    std::uint64_t work_limit = 0;  ///< 0 = unlimited.
    std::uint64_t rows_used = 0;
    std::uint64_t row_limit = 0;   ///< 0 = unlimited.
  };
  BudgetUsage budget;

  /// Trie-index cache usage (db::IndexCacheStats snapshot, flattened here so
  /// util/ stays below db/). Always serialized; `enabled = false` with zeros
  /// means no cache was configured for the run.
  struct CacheUsage {
    bool enabled = false;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t capacity_bytes = 0;
    std::uint64_t entries = 0;
  };
  CacheUsage cache;

  /// Execution-substrate stats, serialized as the "stats" object. The SIMD
  /// level is read at Emit() time straight from kernels::ActiveSimdLevel()
  /// (qc_util links qc_kernels), so every report truthfully records the
  /// dispatched kernel path with zero per-tool wiring; the arena high-water
  /// mark is filled by owners that route scratch through a util::Arena
  /// (0 = no arena in use).
  struct SubstrateStats {
    std::uint64_t arena_high_water_bytes = 0;
  };
  SubstrateStats stats;

  /// Merged counters + gauges (Counters keeps the kind split).
  Counters counters;

  /// Merged span tree, typically Trace::Collect() after a traced run.
  TraceReport trace;

  /// Per-request context when the run was served by qc_serverd. Serialized
  /// (as a "server" object) only when `present` — standalone CLI/bench
  /// reports keep the historical schema byte-for-byte.
  struct ServerInfo {
    bool present = false;
    std::uint64_t request_id = 0;
    double queue_ms = 0.0;  ///< Time spent waiting in the admission queue.
    std::uint64_t snapshot_epoch = 0;  ///< MVCC write epoch the query saw.
  };
  ServerInfo server;

  /// Incremental-view-maintenance counters when the serving process keeps
  /// materialized views (db::IvmStats snapshot, flattened here so util/
  /// stays below db/). Serialized (as an "ivm" object) only when `present`.
  struct IvmInfo {
    bool present = false;
    std::uint64_t views = 0;
    std::uint64_t updates = 0;
    std::uint64_t dirty_subtree_sweeps = 0;
    std::uint64_t rows_delta_applied = 0;
    std::uint64_t full_recomputes = 0;
  };
  IvmInfo ivm;

  /// Degree-split hybrid planner decision record (db::HybridPlan snapshot,
  /// flattened here so util/ stays below db/). Serialized (as a "planner"
  /// object) only when `present` — set whenever the planner examined the
  /// query, including auto-mode rejections where the trie engine ran.
  struct PlannerInfo {
    bool present = false;
    std::string pattern;  ///< "triangle", "4-cycle", "4-clique", "5-clique".
    std::int64_t threshold = 0;         ///< Resolved degree threshold Δ.
    bool threshold_overridden = false;  ///< Δ came from the caller, not √N.
    bool delegated = false;      ///< No heavy values: one pure GenericJoin.
    std::uint64_t heavy_values = 0;
    std::uint64_t heavy_tuples = 0;
    std::uint64_t light_tuples = 0;
    std::uint64_t heavy_rows = 0;
    std::uint64_t light_rows = 0;
  };
  PlannerInfo planner;

  /// Copies usage and limits out of a run's budget. `deadline_armed` is
  /// inferred from the status or set by the caller via `deadline_armed`.
  void FillBudget(const Budget& b, bool deadline_armed);

  /// THE serialization entry point: writes the report object into `w`.
  /// Every emission path — ToJson/WriteJsonFile, the bench `--json`
  /// harnesses, qc_serverd's report frames — funnels through this one
  /// method, so the schema cannot fork per tool.
  void Emit(JsonWriter& w) const;

  std::string ToJson() const;

  /// Writes ToJson() plus a trailing newline; false (with a stderr message)
  /// when the file cannot be written.
  bool WriteJsonFile(const std::string& path) const;
};

}  // namespace qc::util

#endif  // QC_UTIL_RUN_REPORT_H_
