#ifndef QC_UTIL_COUNTERS_H_
#define QC_UTIL_COUNTERS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>

namespace qc::util {

/// Unified effort-counter sink: a key -> uint64 accumulator.
///
/// Every engine (Generic Join, the treewidth DPs, the CSP solvers, ...)
/// reports its work measures here under dotted keys such as
/// "generic_join.probes" or "treedp.table_entries", replacing the per-engine
/// stats structs as the cross-engine reporting surface. Not thread-safe:
/// parallel kernels accumulate into per-worker Counters and Merge them in a
/// deterministic order (or report through the thread-safe MetricsRegistry).
///
/// Keys come in two kinds. *Counters* (written with Add) are monotonic work
/// measures; Merge sums them across workers. *Gauges* (written with Set) are
/// level readings — thread counts, configured limits, high-water marks —
/// that would double-count if summed: Merge takes the maximum instead, which
/// is order-independent and therefore deterministic no matter how many
/// workers merge in. Don't mix Add and Set on one key.
class Counters {
 public:
  void Add(std::string_view key, std::uint64_t delta = 1) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_.emplace(std::string(key), delta);
    } else {
      it->second += delta;
    }
  }

  /// Writes a gauge: last-write value, max-merge semantics.
  void Set(std::string_view key, std::uint64_t value) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_.emplace(std::string(key), value);
    } else {
      it->second = value;
    }
    auto g = gauges_.find(key);
    if (g == gauges_.end()) gauges_.emplace(key);
  }

  /// 0 when the key was never touched.
  std::uint64_t Get(std::string_view key) const {
    auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second;
  }

  bool IsGauge(std::string_view key) const {
    return gauges_.find(key) != gauges_.end();
  }

  /// Sums counter keys; takes the max for keys `other` marks as gauges (a
  /// per-worker thread-count gauge merged 8 times must not read 8x).
  void Merge(const Counters& other) {
    for (const auto& [key, value] : other.values_) {
      if (other.IsGauge(key)) {
        Set(key, std::max(Get(key), value));
      } else {
        Add(key, value);
      }
    }
  }

  void Clear() {
    values_.clear();
    gauges_.clear();
  }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// Sorted key -> value view (std::map iterates in key order).
  const std::map<std::string, std::uint64_t, std::less<>>& items() const {
    return values_;
  }

  /// One "key=value" per line, keys sorted.
  std::string ToString() const {
    std::ostringstream out;
    bool first = true;
    for (const auto& [key, value] : values_) {
      if (!first) out << '\n';
      first = false;
      out << key << '=' << value;
    }
    return out.str();
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> values_;
  std::set<std::string, std::less<>> gauges_;
};

}  // namespace qc::util

#endif  // QC_UTIL_COUNTERS_H_
