#ifndef QC_UTIL_COUNTERS_H_
#define QC_UTIL_COUNTERS_H_

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

namespace qc::util {

/// Unified effort-counter sink: a key -> uint64 accumulator.
///
/// Every engine (Generic Join, the treewidth DPs, the CSP solvers, ...)
/// reports its work measures here under dotted keys such as
/// "generic_join.probes" or "treedp.table_entries", replacing the per-engine
/// stats structs as the cross-engine reporting surface. Not thread-safe:
/// parallel kernels accumulate into per-worker Counters and Merge them in a
/// deterministic order.
class Counters {
 public:
  void Add(std::string_view key, std::uint64_t delta = 1) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_.emplace(std::string(key), delta);
    } else {
      it->second += delta;
    }
  }

  void Set(std::string_view key, std::uint64_t value) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_.emplace(std::string(key), value);
    } else {
      it->second = value;
    }
  }

  /// 0 when the key was never touched.
  std::uint64_t Get(std::string_view key) const {
    auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second;
  }

  void Merge(const Counters& other) {
    for (const auto& [key, value] : other.values_) Add(key, value);
  }

  void Clear() { values_.clear(); }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// Sorted key -> value view (std::map iterates in key order).
  const std::map<std::string, std::uint64_t, std::less<>>& items() const {
    return values_;
  }

  /// One "key=value" per line, keys sorted.
  std::string ToString() const {
    std::ostringstream out;
    bool first = true;
    for (const auto& [key, value] : values_) {
      if (!first) out << '\n';
      first = false;
      out << key << '=' << value;
    }
    return out.str();
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> values_;
};

}  // namespace qc::util

#endif  // QC_UTIL_COUNTERS_H_
