#ifndef QC_UTIL_FRACTION_H_
#define QC_UTIL_FRACTION_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qc::util {

/// Exact rational number backed by int64 numerator/denominator.
///
/// Always kept in canonical form: gcd(num, den) == 1 and den > 0.
/// Intermediate products are computed in 128-bit to avoid overflow for the
/// magnitudes that arise in small simplex tableaus; construction and
/// arithmetic abort on true 64-bit overflow (these LPs are tiny, so an
/// overflow indicates a logic error, not a data condition).
class Fraction {
 public:
  /// Zero.
  constexpr Fraction() : num_(0), den_(1) {}
  /// Integer value.
  constexpr Fraction(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// num/den; den must be nonzero.
  Fraction(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsInteger() const { return den_ == 1; }

  /// Value as double (for reporting only; may lose precision).
  double ToDouble() const;
  /// "p/q" or "p" when integral.
  std::string ToString() const;

  Fraction operator-() const;
  Fraction operator+(const Fraction& other) const;
  Fraction operator-(const Fraction& other) const;
  Fraction operator*(const Fraction& other) const;
  /// Division; other must be nonzero.
  Fraction operator/(const Fraction& other) const;

  Fraction& operator+=(const Fraction& other) { return *this = *this + other; }
  Fraction& operator-=(const Fraction& other) { return *this = *this - other; }
  Fraction& operator*=(const Fraction& other) { return *this = *this * other; }
  Fraction& operator/=(const Fraction& other) { return *this = *this / other; }

  bool operator==(const Fraction& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Fraction& other) const { return !(*this == other); }
  bool operator<(const Fraction& other) const;
  bool operator>(const Fraction& other) const { return other < *this; }
  bool operator<=(const Fraction& other) const { return !(other < *this); }
  bool operator>=(const Fraction& other) const { return !(*this < other); }

  /// Smallest integer >= value.
  std::int64_t Ceil() const;
  /// Largest integer <= value.
  std::int64_t Floor() const;

 private:
  void Normalize();

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Fraction& f);

}  // namespace qc::util

#endif  // QC_UTIL_FRACTION_H_
