#ifndef QC_UTIL_BITSET_H_
#define QC_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

namespace qc::util {

/// Fixed-capacity dynamic bitset with word-level access.
///
/// Used as the substrate for word-parallel Boolean matrix multiplication and
/// for adjacency/neighbourhood sets in the graph algorithms. Unlike
/// std::vector<bool> it exposes the 64-bit words so callers can do
/// word-parallel AND/OR/popcount.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(int size)
      : size_(size), words_((size + 63) / 64, 0ULL) {}

  int size() const { return size_; }

  void Set(int i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Reset(int i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(int i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }

  void Clear() { words_.assign(words_.size(), 0ULL); }

  /// Number of set bits.
  int Count() const {
    int c = 0;
    for (std::uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  /// Number of set bits in `this & other` (sizes must match).
  int IntersectCount(const Bitset& other) const {
    int c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += __builtin_popcountll(words_[i] & other.words_[i]);
    }
    return c;
  }

  /// True if `this & other` is nonempty.
  bool Intersects(const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// True if every bit of *this is set in `other`.
  bool IsSubsetOf(const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  Bitset& operator|=(const Bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }
  Bitset& operator&=(const Bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
    return *this;
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Index of the lowest set bit at or after `from`, or -1 if none.
  int NextSetBit(int from) const {
    if (from >= size_) return -1;
    int wi = from >> 6;
    std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (true) {
      if (w) return (wi << 6) + __builtin_ctzll(w);
      if (++wi >= static_cast<int>(words_.size())) return -1;
      w = words_[wi];
    }
  }

  /// Indices of all set bits, ascending.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    for (int i = NextSetBit(0); i >= 0; i = NextSetBit(i + 1)) {
      out.push_back(i);
    }
    return out;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

 private:
  int size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qc::util

#endif  // QC_UTIL_BITSET_H_
