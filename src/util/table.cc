#include "util/table.h"

#include <cstdio>
#include <cstdlib>

namespace qc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) std::abort();
  rows_.push_back(std::move(row));
}

std::string Table::ToCell(double v) {
  char buf[64];
  if (v != 0 && (v < 1e-3 || v >= 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j].size() > width[j]) width[j] = row[j].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t j = 0; j < row.size(); ++j) {
      out += "  ";
      out.append(width[j] - row[j].size(), ' ');
      out += row[j];
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  std::string sep;
  for (std::size_t j = 0; j < header_.size(); ++j) {
    sep += "  " + std::string(width[j], '-');
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace qc::util
