#ifndef QC_UTIL_TRACE_H_
#define QC_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace qc::util {

namespace trace_internal {
/// Process-wide recording flag. Inline so ScopedSpan's fast path compiles to
/// a single relaxed load at every call site, with no function call when
/// tracing is off.
inline std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

/// One node of the merged span tree: the tree structure comes from the
/// dotted span names (`engine.stage`, DESIGN.md §9), so "generic_join.level.0"
/// is a child of "level" under "generic_join". `count`/`total_ns` are the
/// records that landed exactly on this path; timings are inclusive of
/// everything executed while the span was open (children included).
struct TraceNode {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::map<std::string, TraceNode> children;

  const TraceNode* Find(std::string_view dotted_path) const;
};

/// Deterministically merged view of every thread's span buffer.
struct TraceReport {
  TraceNode root;  ///< Unnamed; its children are the top-level engines.
  std::uint64_t total_records = 0;

  bool empty() const { return root.children.empty(); }

  /// Canonical deterministic rendering: one "path count=N" line per node,
  /// two-space indentation, children in name order. Timings are deliberately
  /// excluded, so for a deterministic workload the string is bit-identical
  /// across runs and thread counts (the acceptance check for the span layer).
  std::string TreeString() const;
};

/// Lightweight span/trace subsystem.
///
/// Engines open ScopedSpan RAII guards around their stages; each completed
/// span appends one (interned name, duration) record to a per-thread buffer.
/// Buffers have fixed capacity (kBufferCapacity); on overflow they fold into
/// a per-thread aggregate map, so nothing is ever dropped and memory stays
/// bounded no matter how many spans a run emits. Collect() merges every
/// thread's buffer into a TraceReport keyed by dotted span name — a merge
/// that is independent of thread scheduling and registration order, which is
/// what makes the span tree deterministic across thread counts for the
/// bit-identical parallel kernels of DESIGN.md §6.
///
/// Cost contract: when disabled, constructing a ScopedSpan is one relaxed
/// atomic load (the same budget as Budget::Poll's fast path; the
/// BM_GenericJoinTriangle* microbenches keep the disabled overhead under
/// 2%). When enabled, a span costs two steady_clock reads plus one buffer
/// append.
///
/// Threading contract: spans may be opened and closed on any thread.
/// Enable/Disable/Collect/Reset must not race in-flight spans — call them
/// from the coordinating thread between runs (ParallelFor joins its workers
/// before returning, which establishes the needed happens-before for worker
/// buffers).
class Trace {
 public:
  static bool enabled() {
    return trace_internal::g_enabled.load(std::memory_order_relaxed);
  }

  /// Clears all per-thread buffers and starts recording.
  static void Enable();

  /// Stops recording; buffers are kept for Collect().
  static void Disable();

  /// Clears all per-thread buffers without changing the enabled flag.
  static void Reset();

  /// Merges every thread's buffer into one report (buffers are left
  /// untouched; collect is repeatable).
  static TraceReport Collect();

  /// Interns `name`, returning a stable id for ScopedSpan. Interning takes a
  /// global lock: do it once per call site (static local) or per engine
  /// instance (member), not per span.
  static std::uint32_t InternName(std::string_view name);

  /// Appends one completed-span record to the calling thread's buffer.
  /// Internal to ScopedSpan; exposed for tests.
  static void Record(std::uint32_t name_id, std::int64_t dur_ns);

  /// Per-thread buffer capacity in records before folding into the
  /// aggregate map.
  static constexpr std::size_t kBufferCapacity = 1 << 14;
};

/// RAII span guard. The name id comes from Trace::InternName; spans nest
/// naturally (the enclosing span's duration includes the nested one), and
/// the dotted naming convention places them in the merged tree.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint32_t name_id) {
    if (!Trace::enabled()) return;
    name_id_ = name_id;
    start_ = std::chrono::steady_clock::now();
    active_ = true;
  }

  ~ScopedSpan() {
    if (!active_) return;
    Trace::Record(name_id_,
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint32_t name_id_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

}  // namespace qc::util

#endif  // QC_UTIL_TRACE_H_
