#include "util/lp.h"

#include <cstdlib>

namespace qc::util {

void LpProblem::AddRow(std::vector<Fraction> coeffs, Sense sense,
                       Fraction rhs) {
  if (static_cast<int>(coeffs.size()) != num_vars) std::abort();
  rows.push_back(Row{std::move(coeffs), sense, rhs});
}

namespace {

/// Dense exact-rational simplex over an equality-form tableau.
///
/// Column layout: [0, num_real) are the problem's variables plus slacks,
/// [num_real, num_total) are phase-1 artificials. The tableau is kept in
/// B^{-1}A form with `rhs` = B^{-1}b, so the basic solution can be read off
/// directly.
class Tableau {
 public:
  Tableau(int rows, int cols) : m_(rows), n_(cols), a_(rows), rhs_(rows) {
    for (auto& row : a_) row.assign(cols, Fraction(0));
    basis_.assign(rows, -1);
  }

  Fraction& At(int i, int j) { return a_[i][j]; }
  Fraction& Rhs(int i) { return rhs_[i]; }
  int& Basis(int i) { return basis_[i]; }
  int rows() const { return m_; }
  int cols() const { return n_; }

  void Pivot(int row, int col) {
    Fraction p = a_[row][col];
    for (int j = 0; j < n_; ++j) a_[row][j] /= p;
    rhs_[row] /= p;
    for (int i = 0; i < m_; ++i) {
      if (i == row || a_[i][col].IsZero()) continue;
      Fraction f = a_[i][col];
      for (int j = 0; j < n_; ++j) a_[i][j] -= f * a_[row][j];
      rhs_[i] -= f * rhs_[row];
    }
    basis_[row] = col;
  }

  /// Runs simplex to optimality for the cost vector `cost` (size n_),
  /// entering only columns with `allowed[j]`. Returns false if unbounded.
  bool Optimize(const std::vector<Fraction>& cost,
                const std::vector<bool>& allowed) {
    while (true) {
      // Reduced costs: r_j = c_j - sum_i c_{basis_i} * T[i][j].
      int enter = -1;
      for (int j = 0; j < n_; ++j) {
        if (!allowed[j]) continue;
        Fraction r = cost[j];
        for (int i = 0; i < m_; ++i) {
          if (!cost[basis_[i]].IsZero() && !a_[i][j].IsZero()) {
            r -= cost[basis_[i]] * a_[i][j];
          }
        }
        if (r.IsNegative()) {  // Bland: first improving column.
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;

      int leave = -1;
      Fraction best;
      for (int i = 0; i < m_; ++i) {
        if (!(Fraction(0) < a_[i][enter])) continue;
        Fraction ratio = rhs_[i] / a_[i][enter];
        if (leave < 0 || ratio < best ||
            (ratio == best && basis_[i] < basis_[leave])) {
          leave = i;
          best = ratio;
        }
      }
      if (leave < 0) return false;  // Unbounded.
      Pivot(leave, enter);
    }
  }

 private:
  int m_, n_;
  std::vector<std::vector<Fraction>> a_;
  std::vector<Fraction> rhs_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem) {
  const int n = problem.num_vars;
  const int m = static_cast<int>(problem.rows.size());

  // Count slacks: one per inequality row.
  int num_slacks = 0;
  for (const auto& row : problem.rows) {
    if (row.sense != LpProblem::Sense::kEq) ++num_slacks;
  }
  const int num_real = n + num_slacks;
  const int num_total = num_real + m;  // One artificial per row (worst case).

  Tableau t(m, num_total);
  int slack = n;
  std::vector<int> artificial_of_row(m, -1);
  for (int i = 0; i < m; ++i) {
    const auto& row = problem.rows[i];
    bool flip = row.rhs.IsNegative();
    for (int j = 0; j < n; ++j) {
      t.At(i, j) = flip ? -row.coeffs[j] : row.coeffs[j];
    }
    t.Rhs(i) = flip ? -row.rhs : row.rhs;
    Fraction slack_sign(0);
    if (row.sense == LpProblem::Sense::kGe) slack_sign = Fraction(-1);
    if (row.sense == LpProblem::Sense::kLe) slack_sign = Fraction(1);
    if (!slack_sign.IsZero()) {
      t.At(i, slack) = flip ? -slack_sign : slack_sign;
      // A +1 slack with nonnegative rhs can serve as the initial basis.
      if ((flip ? -slack_sign : slack_sign) == Fraction(1)) {
        t.Basis(i) = slack;
      }
      ++slack;
    }
    if (t.Basis(i) < 0) {
      int art = num_real + i;
      t.At(i, art) = Fraction(1);
      t.Basis(i) = art;
      artificial_of_row[i] = art;
    }
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<Fraction> phase1_cost(num_total, Fraction(0));
  std::vector<bool> allowed(num_total, true);
  bool has_artificial = false;
  for (int i = 0; i < m; ++i) {
    if (artificial_of_row[i] >= 0) {
      phase1_cost[artificial_of_row[i]] = Fraction(1);
      has_artificial = true;
    }
  }
  LpSolution result;
  if (has_artificial) {
    if (!t.Optimize(phase1_cost, allowed)) std::abort();  // Phase 1 bounded.
    Fraction infeasibility(0);
    for (int i = 0; i < m; ++i) {
      if (phase1_cost[t.Basis(i)] == Fraction(1)) infeasibility += t.Rhs(i);
    }
    if (!infeasibility.IsZero()) {
      result.status = LpSolution::Status::kInfeasible;
      return result;
    }
    // Pivot any artificial still basic (at value zero) out of the basis.
    for (int i = 0; i < m; ++i) {
      if (t.Basis(i) < num_real) continue;
      for (int j = 0; j < num_real; ++j) {
        if (!t.At(i, j).IsZero()) {
          t.Pivot(i, j);
          break;
        }
      }
      // If no pivot exists the row is redundant; the artificial stays basic
      // at zero and can never re-enter (banned below), which is harmless.
    }
  }

  // Phase 2: the real objective; artificials may not enter.
  std::vector<Fraction> cost(num_total, Fraction(0));
  for (int j = 0; j < n; ++j) cost[j] = problem.objective[j];
  for (int j = num_real; j < num_total; ++j) allowed[j] = false;
  if (!t.Optimize(cost, allowed)) {
    result.status = LpSolution::Status::kUnbounded;
    return result;
  }

  result.status = LpSolution::Status::kOptimal;
  result.x.assign(n, Fraction(0));
  for (int i = 0; i < m; ++i) {
    if (t.Basis(i) < n) result.x[t.Basis(i)] = t.Rhs(i);
  }
  result.objective = Fraction(0);
  for (int j = 0; j < n; ++j) {
    result.objective += problem.objective[j] * result.x[j];
  }
  return result;
}

LpSolution MaximizeLp(const LpProblem& problem) {
  LpProblem neg = problem;
  for (auto& c : neg.objective) c = -c;
  LpSolution sol = SolveLp(neg);
  if (sol.status == LpSolution::Status::kOptimal) {
    sol.objective = -sol.objective;
  }
  return sol;
}

}  // namespace qc::util
