#ifndef QC_UTIL_TABLE_H_
#define QC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace qc::util {

/// Column-aligned plain-text table used by the experiment harness to print
/// the series each bench regenerates (the paper has no numeric tables, so
/// these are the series backing its asymptotic claims).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with ToCell.
  template <typename... Ts>
  void AddRowOf(const Ts&... cells) {
    AddRow({ToCell(cells)...});
  }

  /// Renders with a separator under the header.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(int v) { return std::to_string(v); }
  static std::string ToCell(long v) { return std::to_string(v); }
  static std::string ToCell(long long v) { return std::to_string(v); }
  static std::string ToCell(unsigned long v) { return std::to_string(v); }
  static std::string ToCell(unsigned long long v) { return std::to_string(v); }
  static std::string ToCell(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qc::util

#endif  // QC_UTIL_TABLE_H_
