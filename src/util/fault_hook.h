#ifndef QC_UTIL_FAULT_HOOK_H_
#define QC_UTIL_FAULT_HOOK_H_

#include <atomic>
#include <string_view>

namespace qc::util {

/// Link-free fault-injection fast path.
///
/// Injection sites live in headers that leaf libraries (qc_kernels, which
/// by design links nothing) include — so the gate cannot reference symbols
/// defined in qc_util's fault.cc. Instead the state is C++17 inline
/// variables: an activity counter plus a function pointer that
/// FaultRegistry (fault.cc) installs when rules become active. A binary
/// that never links fault.cc leaves both at zero and every FaultPoint()
/// collapses to one relaxed load returning false.
namespace fault_hook {

/// Registries currently holding rules (bumped by FaultRegistry).
inline std::atomic<int> g_active{0};

using ShouldFailFn = bool (*)(std::string_view point);
/// Evaluates a point against the global registry; installed by fault.cc.
inline std::atomic<ShouldFailFn> g_should_fail{nullptr};

}  // namespace fault_hook

/// Global fast-path gate: false unless some FaultRegistry holds rules.
/// Injection sites write `if (FaultsEnabled() && FaultPoint("x")) ...` so
/// the idle cost is one relaxed load.
inline bool FaultsEnabled() {
  return fault_hook::g_active.load(std::memory_order_relaxed) > 0;
}

/// Evaluates `point` against the global registry (false immediately when
/// no faults are configured or the registry is not linked in).
inline bool FaultPoint(std::string_view point) {
  if (!FaultsEnabled()) return false;
  fault_hook::ShouldFailFn fn =
      fault_hook::g_should_fail.load(std::memory_order_acquire);
  return fn != nullptr && fn(point);
}

}  // namespace qc::util

#endif  // QC_UTIL_FAULT_HOOK_H_
