#ifndef QC_UTIL_THREADPOOL_H_
#define QC_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/budget.h"

namespace qc::util {

/// Lazily-started worker pool shared by all parallel kernels.
///
/// Workers are spawned on first use and grow on demand up to whatever
/// parallelism a call requests, so constructing a pool (or the process-wide
/// `Shared()` instance) costs nothing until a kernel actually runs parallel.
/// All parallel kernels in this library are written so that the chunk
/// decomposition — and therefore the merged output — depends only on the
/// requested parallelism, never on thread scheduling: results are
/// bit-identical across any thread count, including the serial path.
class ThreadPool {
 public:
  /// `default_parallelism` is used by ParallelFor when the caller passes 0;
  /// 0 here means DefaultThreadCount() (the QC_THREADS environment
  /// variable, else 1).
  explicit ThreadPool(int default_parallelism = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int default_parallelism() const { return default_parallelism_; }

  /// Schedules `fn` on a worker; the future rethrows fn's exception.
  std::future<void> Submit(std::function<void()> fn);

  /// Chunked parallel loop over [begin, end): `body(chunk_begin, chunk_end)`
  /// is invoked for disjoint chunks covering the range, each at least
  /// `min_grain` long (except possibly the last). The calling thread
  /// participates, so `parallelism == 1` (or a range smaller than
  /// 2 * min_grain) runs `body(begin, end)` inline with no synchronization.
  /// Nested calls — from inside a chunk body or a Submitted task — run
  /// inline, which makes recursion safe (no worker-starvation deadlock).
  /// The first exception thrown by any chunk is rethrown to the caller
  /// after all chunks settle.
  ///
  /// When `budget` is non-null the loop is cancellable: once the budget
  /// trips, no new chunks are claimed and the call drains cleanly (chunks
  /// already running poll the budget themselves at their own safe points).
  /// The chunk decomposition never depends on the budget, so results stay
  /// bit-identical at any thread count whenever the run completes.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t, std::int64_t)>& body,
                   int parallelism = 0, std::int64_t min_grain = 1,
                   Budget* budget = nullptr);

  /// Process-wide pool used by kernels that are not handed one explicitly.
  static ThreadPool& Shared();

  /// QC_THREADS environment variable when set to a positive integer, else 1
  /// (parallelism is strictly opt-in: results are bit-identical either way,
  /// but single-thread defaults keep timings reproducible).
  static int DefaultThreadCount();

  /// std::thread::hardware_concurrency, at least 1.
  static int HardwareThreads();

 private:
  void EnsureWorkers(int n);  // Grows the worker set to >= n threads.
  void WorkerLoop();

  int default_parallelism_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace qc::util

#endif  // QC_UTIL_THREADPOOL_H_
