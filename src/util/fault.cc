#include "util/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace qc::util {

namespace {

/// ShouldFailFn installed into fault_hook::g_should_fail: routes header
/// injection sites to the global registry.
bool GlobalShouldFail(std::string_view point) {
  return FaultRegistry::Global().ShouldFail(point);
}

bool ParseU64(std::string_view value, std::uint64_t* out) {
  if (value.empty() || value.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Probability literal: "0", "1", "0.25", ".5". Hand-rolled so a malformed
/// spec is rejected rather than strtod-guessed.
bool ParseProb(std::string_view value, double* out) {
  if (value.empty() || value.size() > 12) return false;
  double v = 0.0;
  std::size_t i = 0;
  while (i < value.size() && value[i] >= '0' && value[i] <= '9') {
    v = v * 10.0 + (value[i] - '0');
    ++i;
  }
  if (i < value.size()) {
    if (value[i] != '.') return false;
    ++i;
    if (i == value.size()) return false;
    double scale = 0.1;
    while (i < value.size()) {
      if (value[i] < '0' || value[i] > '9') return false;
      v += (value[i] - '0') * scale;
      scale *= 0.1;
      ++i;
    }
  }
  if (v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

FaultRegistry::~FaultRegistry() {
  // Keep the global gate honest if a rule-holding test registry dies.
  if (active_.load(std::memory_order_relaxed)) {
    fault_hook::g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool FaultRegistry::Configure(std::string_view spec, std::uint64_t seed,
                              std::string* error) {
  std::vector<Point> parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    std::size_t colon = entry.find(':');
    std::size_t eq = entry.find('=');
    if (colon == std::string_view::npos || eq == std::string_view::npos ||
        colon == 0 || eq < colon + 2 || eq + 1 >= entry.size()) {
      if (error != nullptr) {
        *error = "bad fault entry '" + std::string(entry) +
                 "' (want point:kind=value)";
      }
      return false;
    }
    std::string_view name = entry.substr(0, colon);
    std::string_view kind = entry.substr(colon + 1, eq - colon - 1);
    std::string_view value = entry.substr(eq + 1);

    Rule rule;
    bool ok = false;
    if (kind == "after") {
      rule.kind = Rule::Kind::kAfter;
      ok = ParseU64(value, &rule.n);
    } else if (kind == "once") {
      rule.kind = Rule::Kind::kOnce;
      ok = ParseU64(value, &rule.n) && rule.n >= 1;
    } else if (kind == "every") {
      rule.kind = Rule::Kind::kEvery;
      ok = ParseU64(value, &rule.n) && rule.n >= 1;
    } else if (kind == "prob") {
      rule.kind = Rule::Kind::kProb;
      ok = ParseProb(value, &rule.prob);
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad fault rule '" + std::string(entry) +
                 "' (kinds: after=N once=N every=N prob=P)";
      }
      return false;
    }

    Point* existing = nullptr;
    for (Point& p : parsed) {
      if (p.name == name) existing = &p;
    }
    if (existing == nullptr) {
      parsed.push_back(Point{std::string(name), rule, true, 0, 0});
    } else {
      existing->rule = rule;  // Last spec for a point wins.
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Carry stats across reconfiguration for points that survive.
  for (Point& p : parsed) {
    for (const Point& old : points_) {
      if (old.name == p.name) {
        p.evals = old.evals;
        p.fires = old.fires;
      }
    }
  }
  points_ = std::move(parsed);
  rng_ = seed != 0 ? seed : 1;  // Xorshift must never be seeded with 0.
  const bool now_active = !points_.empty();
  const bool was_active = active_.exchange(now_active,
                                           std::memory_order_relaxed);
  if (now_active != was_active) {
    // The hook pointer is published before the activity count so a site
    // that observes g_active > 0 always finds a callable hook.
    fault_hook::g_should_fail.store(&GlobalShouldFail,
                                    std::memory_order_release);
    fault_hook::g_active.fetch_add(now_active ? 1 : -1,
                                   std::memory_order_relaxed);
  }
  return true;
}

void FaultRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Point& p : points_) p.has_rule = false;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [](const Point& p) {
                                 return p.evals == 0 && p.fires == 0;
                               }),
                points_.end());
  if (active_.exchange(false, std::memory_order_relaxed)) {
    fault_hook::g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

FaultRegistry::Point* FaultRegistry::FindLocked(std::string_view name) {
  for (Point& p : points_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

bool FaultRegistry::ShouldFail(std::string_view point) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Point* p = FindLocked(point);
  if (p == nullptr || !p->has_rule) return false;
  ++p->evals;
  bool fire = false;
  switch (p->rule.kind) {
    case Rule::Kind::kAfter:
      fire = p->evals > p->rule.n;
      break;
    case Rule::Kind::kOnce:
      fire = p->evals == p->rule.n;
      break;
    case Rule::Kind::kEvery:
      fire = p->evals % p->rule.n == 0;
      break;
    case Rule::Kind::kProb: {
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      // 53-bit mantissa draw in [0, 1).
      const double draw =
          static_cast<double>(rng_ >> 11) / 9007199254740992.0;
      fire = draw < p->rule.prob;
      break;
    }
  }
  if (fire) ++p->fires;
  return fire;
}

std::vector<FaultRegistry::PointStats> FaultRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointStats> out;
  out.reserve(points_.size());
  for (const Point& p : points_) {
    if (p.evals == 0 && p.fires == 0) continue;
    out.push_back(PointStats{p.name, p.evals, p.fires});
  }
  std::sort(out.begin(), out.end(),
            [](const PointStats& a, const PointStats& b) {
              return a.point < b.point;
            });
  return out;
}

void FaultRegistry::ExportCounters(Counters* sink) const {
  for (const PointStats& p : stats()) {
    sink->Add("fault." + p.point + ".evals", p.evals);
    sink->Add("fault." + p.point + ".fires", p.fires);
  }
}

void FaultRegistry::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Point& p : points_) {
    p.evals = 0;
    p.fires = 0;
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [](const Point& p) { return !p.has_rule; }),
                points_.end());
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    const char* spec = std::getenv("QC_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      std::uint64_t seed = 1;
      const char* seed_env = std::getenv("QC_FAULT_SEED");
      if (seed_env != nullptr) {
        std::uint64_t parsed = 0;
        if (ParseU64(seed_env, &parsed)) seed = parsed;
      }
      std::string error;
      if (!r->Configure(spec, seed, &error)) {
        std::fprintf(stderr, "QC_FAULTS ignored: %s\n", error.c_str());
      }
    }
    return r;
  }();
  return *registry;
}

namespace {

/// Forces the QC_FAULTS env spec into the global registry at load time —
/// without this, the FaultsEnabled() fast path would short-circuit every
/// FaultPoint() before the lazy Global() ever read the environment.
const bool g_env_faults_loaded = [] {
  const char* spec = std::getenv("QC_FAULTS");
  if (spec != nullptr && spec[0] != '\0') FaultRegistry::Global();
  return true;
}();

}  // namespace

}  // namespace qc::util
