#ifndef QC_UTIL_RNG_H_
#define QC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace qc::util {

/// Deterministic pseudo-random generator (splitmix64).
///
/// Every test, generator, and benchmark in this project seeds an Rng
/// explicitly so all results are bit-reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct values from [0, n), in random order. Requires k <= n.
  std::vector<int> Sample(int n, int k) {
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    Shuffle(&pool);
    pool.resize(k);
    return pool;
  }

 private:
  std::uint64_t state_;
};

}  // namespace qc::util

#endif  // QC_UTIL_RNG_H_
