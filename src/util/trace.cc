#include "util/trace.h"

#include <mutex>
#include <unordered_map>
#include <vector>

namespace qc::util {

namespace {

struct SpanRecord {
  std::uint32_t name_id;
  std::int64_t dur_ns;
};

struct Agg {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
};

/// One per thread that ever recorded a span. Owned by the global registry so
/// records survive thread exit (ThreadPool workers are long-lived, but ad-hoc
/// std::threads are not); the owning thread is the only writer, and readers
/// (Collect/Reset) run between parallel regions, after the joins/futures that
/// establish happens-before.
struct ThreadBuffer {
  std::vector<SpanRecord> records;
  std::unordered_map<std::uint32_t, Agg> folded;

  void Fold() {
    for (const SpanRecord& r : records) {
      Agg& a = folded[r.name_id];
      ++a.count;
      a.total_ns += r.dur_ns;
    }
    records.clear();
  }
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> name_ids;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();  // Leaked: usable during exit.
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* tls = nullptr;
  if (tls == nullptr) {
    tls = new ThreadBuffer();
    tls->records.reserve(Trace::kBufferCapacity);
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(tls);
  }
  return *tls;
}

/// Inserts `agg` at the node addressed by the dotted `name`.
void Insert(TraceNode* root, std::string_view name, const Agg& agg) {
  TraceNode* node = root;
  while (!name.empty()) {
    std::size_t dot = name.find('.');
    std::string_view head = name.substr(0, dot);
    node = &node->children[std::string(head)];
    name = dot == std::string_view::npos ? std::string_view()
                                         : name.substr(dot + 1);
  }
  node->count += agg.count;
  node->total_ns += agg.total_ns;
}

void TreeLines(const TraceNode& node, const std::string& indent,
               std::string* out) {
  for (const auto& [name, child] : node.children) {
    *out += indent;
    *out += name;
    *out += " count=";
    *out += std::to_string(child.count);
    *out += '\n';
    TreeLines(child, indent + "  ", out);
  }
}

}  // namespace

const TraceNode* TraceNode::Find(std::string_view dotted_path) const {
  const TraceNode* node = this;
  while (!dotted_path.empty()) {
    std::size_t dot = dotted_path.find('.');
    auto it = node->children.find(std::string(dotted_path.substr(0, dot)));
    if (it == node->children.end()) return nullptr;
    node = &it->second;
    dotted_path = dot == std::string_view::npos
                      ? std::string_view()
                      : dotted_path.substr(dot + 1);
  }
  return node;
}

std::string TraceReport::TreeString() const {
  std::string out;
  TreeLines(root, "", &out);
  return out;
}

void Trace::Enable() {
  Reset();
  trace_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Trace::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_relaxed);
}

void Trace::Reset() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadBuffer* b : reg.buffers) {
    b->records.clear();
    b->folded.clear();
  }
}

TraceReport Trace::Collect() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Aggregate by interned id first (cheap), then resolve names once. The
  // result depends only on the multiset of records, not on which thread
  // recorded what or in which order buffers were registered.
  std::unordered_map<std::uint32_t, Agg> total;
  std::uint64_t n = 0;
  for (const ThreadBuffer* b : reg.buffers) {
    for (const auto& [id, agg] : b->folded) {
      Agg& a = total[id];
      a.count += agg.count;
      a.total_ns += agg.total_ns;
      n += agg.count;
    }
    for (const SpanRecord& r : b->records) {
      Agg& a = total[r.name_id];
      ++a.count;
      a.total_ns += r.dur_ns;
      ++n;
    }
  }
  TraceReport report;
  report.total_records = n;
  for (const auto& [id, agg] : total) {
    Insert(&report.root, reg.names[id], agg);
  }
  return report;
}

std::uint32_t Trace::InternName(std::string_view name) {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.name_ids.find(std::string(name));
  if (it != reg.name_ids.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(reg.names.size());
  reg.names.emplace_back(name);
  reg.name_ids.emplace(reg.names.back(), id);
  return id;
}

void Trace::Record(std::uint32_t name_id, std::int64_t dur_ns) {
  ThreadBuffer& buf = LocalBuffer();
  if (buf.records.size() >= kBufferCapacity) buf.Fold();
  buf.records.push_back(SpanRecord{name_id, dur_ns});
}

}  // namespace qc::util
