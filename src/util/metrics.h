#ifndef QC_UTIL_METRICS_H_
#define QC_UTIL_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "util/counters.h"

namespace qc::util {

/// Thread-safe metrics sink: the concurrent front door to Counters.
///
/// Parallel kernels historically accumulated into per-worker Counters and
/// merged them on the coordinating thread; MetricsRegistry subsumes that
/// pattern behind one lock so workers (or long-lived services holding one
/// registry across many runs) can report directly. It keeps the Counters
/// kind split: AddCounter sums monotonically, SetGauge is last-write with
/// max-merge, so merging N workers' views never double-counts a gauge.
///
/// Locking: one mutex per registry. These are per-run reporting paths, not
/// per-node hot loops — engines keep their thread-local Counters for the hot
/// path and MergeCounters once per worker, exactly like the old manual
/// pattern but with the gauge semantics applied centrally.
class MetricsRegistry {
 public:
  void AddCounter(std::string_view key, std::uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    merged_.Add(key, delta);
  }

  /// Last-write gauge; use for level readings (thread counts, limits).
  void SetGauge(std::string_view key, std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    merged_.Set(key, value);
  }

  /// Max-semantics gauge; use for high-water marks merged from workers.
  void MaxGauge(std::string_view key, std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    merged_.Set(key, std::max(merged_.Get(key), value));
  }

  /// Folds one worker's Counters in: counter keys sum, gauge keys take the
  /// max (deterministic regardless of worker arrival order).
  void MergeCounters(const Counters& worker) {
    std::lock_guard<std::mutex> lock(mu_);
    merged_.Merge(worker);
  }

  /// Consistent copy of the merged view.
  Counters Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return merged_;
  }

  std::uint64_t Get(std::string_view key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return merged_.Get(key);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    merged_.Clear();
  }

 private:
  mutable std::mutex mu_;
  Counters merged_;
};

}  // namespace qc::util

#endif  // QC_UTIL_METRICS_H_
