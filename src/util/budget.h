#ifndef QC_UTIL_BUDGET_H_
#define QC_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace qc::util {

/// How a run ended. Every engine entry point either returns one of these or
/// exposes it through the Budget it was handed; kCompleted is the only value
/// under which an engine's answer is the full, exact answer.
enum class RunStatus {
  kCompleted = 0,         ///< Ran to the end; the result is complete.
  kDeadlineExceeded = 1,  ///< The wall-clock deadline tripped.
  kBudgetExhausted = 2,   ///< A work-step or output-row budget tripped.
  kCancelled = 3,         ///< External cancellation was requested.
};

/// True for the enumerators above; false for any other value (memory
/// corruption, a version-skewed serialized status, a missed enum extension).
/// CLIs use this to print an explicit internal-error diagnostic instead of
/// silently exiting 7.
constexpr bool IsKnown(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
    case RunStatus::kDeadlineExceeded:
    case RunStatus::kBudgetExhausted:
    case RunStatus::kCancelled:
      return true;
  }
  return false;
}

constexpr std::string_view ToString(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case RunStatus::kBudgetExhausted:
      return "budget-exhausted";
    case RunStatus::kCancelled:
      return "cancelled";
  }
  return "internal-error";
}

/// Process exit code for a status, shared by the CLIs (query_cli,
/// fpt_toolbox) and their tests: 0 on completion, a distinct small nonzero
/// code per truncation cause (1-3 are left for usage/parse/input errors).
constexpr int ExitCode(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
      return 0;
    case RunStatus::kDeadlineExceeded:
      return 4;
    case RunStatus::kBudgetExhausted:
      return 5;
    case RunStatus::kCancelled:
      return 6;
  }
  return 7;
}

/// Shared cooperative cancellation + resource budget for one run.
///
/// A Budget is armed once (deadline, work-step limit, output-row limit), then
/// shared by every engine and worker thread participating in the run. Hot
/// loops call Poll() (or ChargeWork/ChargeRows) at safe points and unwind
/// cleanly when it returns true; the first cause to trip wins and is
/// remembered in status(). RequestCancel() may be called from any thread at
/// any time.
///
/// Cost contract: when nothing has tripped, Poll() is one relaxed atomic
/// load plus, when a deadline is armed, a thread-local stride counter that
/// consults steady_clock only every kPollStride calls — cheap enough for
/// per-search-node placement (the E2 trie-join microbench pins the overhead
/// below 2%).
///
/// Threading contract: arm (and Reset) before sharing the budget with the
/// run; arming is not synchronized against concurrent polls. Poll, Charge*,
/// RequestCancel, Stopped and status are thread-safe.
class Budget {
 public:
  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Arms a wall-clock deadline `seconds` from now (<= 0 trips immediately).
  void ArmDeadlineAfter(double seconds) {
    ArmDeadlineAt(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds)));
  }

  void ArmDeadlineAt(std::chrono::steady_clock::time_point when) {
    has_deadline_ = true;
    deadline_ = when;
    arm_epoch_ = NextArmEpoch();
  }

  /// Arms a work-step budget; ChargeWork trips kBudgetExhausted at `steps`.
  void ArmWorkLimit(std::uint64_t steps) { work_limit_ = steps; }

  /// Arms an output-row budget; ChargeRows trips kBudgetExhausted at `rows`.
  void ArmRowLimit(std::uint64_t rows) { row_limit_ = rows; }

  /// Requests cooperative cancellation; thread-safe, callable at any time.
  void RequestCancel() { Trip(RunStatus::kCancelled); }

  /// True when the run should stop. This is the safe-point probe: one
  /// relaxed load on the fast path (see the class comment).
  bool Poll() {
    if (status_.load(std::memory_order_relaxed) !=
        static_cast<int>(RunStatus::kCompleted)) {
      return true;
    }
    if (!has_deadline_) return false;
    // The stride cache is a per-thread slot *tagged with this budget's arm
    // epoch*, so it only ever amortizes polls against the same arming of the
    // same budget: polling budget A can never defer budget B's deadline
    // check (each switch, and the first poll after Arm/Reset, consults the
    // clock immediately — a pre-expired deadline trips at the very first
    // safe point). Epochs come from a process-wide counter, so a recycled
    // Budget address can never match a stale slot.
    struct PollSlot {
      std::uint64_t epoch = 0;  ///< 0 matches no armed budget.
      int countdown = 0;
    };
    thread_local PollSlot slot;
    if (slot.epoch == arm_epoch_ && --slot.countdown > 0) return false;
    slot.epoch = arm_epoch_;
    slot.countdown = kPollStride;
    return CheckDeadline();
  }

  /// Records `n` work steps against the work budget, then polls. Returns
  /// true when the run should stop.
  bool ChargeWork(std::uint64_t n = 1) {
    if (work_limit_ != 0) {
      std::uint64_t used =
          work_used_.fetch_add(n, std::memory_order_relaxed) + n;
      if (used >= work_limit_) {
        Trip(RunStatus::kBudgetExhausted);
        return true;
      }
    }
    return Poll();
  }

  /// Records `n` produced output rows against the row budget, then polls.
  /// Charging *after* materializing a row yields exactly `row_limit` rows at
  /// the limit. Returns true when the run should stop.
  bool ChargeRows(std::uint64_t n = 1) {
    if (row_limit_ != 0) {
      std::uint64_t used =
          rows_used_.fetch_add(n, std::memory_order_relaxed) + n;
      if (used >= row_limit_) {
        Trip(RunStatus::kBudgetExhausted);
        return true;
      }
    }
    return Poll();
  }

  /// True once any cause has tripped (no clock check; pure load).
  bool Stopped() const {
    return status_.load(std::memory_order_relaxed) !=
           static_cast<int>(RunStatus::kCompleted);
  }

  /// kCompleted until a cause trips; afterwards the first cause that did.
  RunStatus status() const {
    return static_cast<RunStatus>(status_.load(std::memory_order_relaxed));
  }

  std::uint64_t work_used() const {
    return work_used_.load(std::memory_order_relaxed);
  }
  std::uint64_t rows_used() const {
    return rows_used_.load(std::memory_order_relaxed);
  }
  std::uint64_t row_limit() const { return row_limit_; }
  std::uint64_t work_limit() const { return work_limit_; }

  /// Clears a tripped status and the usage counters (limits stay armed).
  /// Not thread-safe; for reusing one budget across sequential runs. The arm
  /// epoch is bumped so every thread's stride cache is invalidated: the
  /// first poll after Reset always consults the deadline clock (a stale
  /// countdown can never mask an already-expired deadline).
  void Reset() {
    status_.store(static_cast<int>(RunStatus::kCompleted),
                  std::memory_order_relaxed);
    work_used_.store(0, std::memory_order_relaxed);
    rows_used_.store(0, std::memory_order_relaxed);
    if (has_deadline_) arm_epoch_ = NextArmEpoch();
  }

 private:
  /// How many Polls share one steady_clock::now() when a deadline is armed.
  static constexpr int kPollStride = 256;

  void Trip(RunStatus cause) {
    int expected = static_cast<int>(RunStatus::kCompleted);
    status_.compare_exchange_strong(expected, static_cast<int>(cause),
                                    std::memory_order_relaxed);
  }

  bool CheckDeadline() {
    if (std::chrono::steady_clock::now() >= deadline_) {
      Trip(RunStatus::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  /// Process-unique id per (budget, arming) pair; never 0.
  static std::uint64_t NextArmEpoch() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::atomic<int> status_{static_cast<int>(RunStatus::kCompleted)};
  bool has_deadline_ = false;
  /// Identifies the current arming for the Poll stride cache. Written by
  /// Arm*/Reset under the same "arm before sharing" contract as
  /// has_deadline_/deadline_.
  std::uint64_t arm_epoch_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t work_limit_ = 0;  ///< 0 = unlimited.
  std::uint64_t row_limit_ = 0;   ///< 0 = unlimited.
  std::atomic<std::uint64_t> work_used_{0};
  std::atomic<std::uint64_t> rows_used_{0};
};

}  // namespace qc::util

#endif  // QC_UTIL_BUDGET_H_
