#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace qc::util {

namespace {

/// Depth of ParallelFor/worker nesting on this thread; nested parallel
/// regions run inline (see header).
thread_local int tl_parallel_depth = 0;

struct DepthGuard {
  DepthGuard() { ++tl_parallel_depth; }
  ~DepthGuard() { --tl_parallel_depth; }
};

}  // namespace

ThreadPool::ThreadPool(int default_parallelism)
    : default_parallelism_(default_parallelism > 0 ? default_parallelism
                                                   : DefaultThreadCount()) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::DefaultThreadCount() {
  static const int count = [] {
    const char* env = std::getenv("QC_THREADS");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    return 1;
  }();
  return count;
}

int ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: worker threads may outlive other static objects,
  // and joining them during static destruction races user tasks.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::EnsureWorkers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  DepthGuard guard;  // Tasks that call ParallelFor run their chunks inline.
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  EnsureWorkers(1);
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    int parallelism, std::int64_t min_grain, Budget* budget) {
  if (end <= begin) return;
  if (budget != nullptr && budget->Stopped()) return;
  if (parallelism <= 0) parallelism = default_parallelism_;
  if (min_grain < 1) min_grain = 1;
  const std::int64_t n = end - begin;
  const std::int64_t max_chunks = (n + min_grain - 1) / min_grain;
  const int workers =
      static_cast<int>(std::min<std::int64_t>(parallelism, max_chunks));
  if (workers <= 1 || tl_parallel_depth > 0) {
    body(begin, end);
    return;
  }

  // Several chunks per worker for load balance; chunk layout depends only on
  // (n, workers, min_grain), so the decomposition is deterministic.
  std::int64_t chunks =
      std::min<std::int64_t>(max_chunks, static_cast<std::int64_t>(workers) * 4);
  const std::int64_t grain = (n + chunks - 1) / chunks;
  chunks = (n + grain - 1) / grain;

  struct ForState {
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  auto run_chunks = [state, begin, end, grain, chunks, budget, &body] {
    DepthGuard guard;
    for (;;) {
      if (budget != nullptr && budget->Stopped()) break;
      std::int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks || state->failed.load(std::memory_order_relaxed)) break;
      std::int64_t lo = begin + c * grain;
      std::int64_t hi = std::min(lo + grain, end);
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  EnsureWorkers(workers - 1);
  std::vector<std::future<void>> helpers;
  helpers.reserve(workers - 1);
  for (int i = 0; i < workers - 1; ++i) helpers.push_back(Submit(run_chunks));
  run_chunks();  // The caller participates.
  for (auto& h : helpers) h.get();  // run_chunks never throws.
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace qc::util
