#include "util/run_report.h"

#include <cstdio>

#include "kernels/dispatch.h"
#include "util/json.h"

namespace qc::util {

namespace {

void WriteSpans(JsonWriter* w, const TraceNode& node) {
  w->BeginArray();
  for (const auto& [name, child] : node.children) {
    w->BeginObject();
    w->Key("name").String(name);
    w->Key("count").Uint(child.count);
    w->Key("total_ms").Double(static_cast<double>(child.total_ns) / 1e6);
    w->Key("children");
    WriteSpans(w, child);
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace

void RunReport::FillBudget(const Budget& b, bool deadline_armed) {
  budget.deadline_armed = deadline_armed;
  budget.work_used = b.work_used();
  budget.work_limit = b.work_limit();
  budget.rows_used = b.rows_used();
  budget.row_limit = b.row_limit();
}

void RunReport::Emit(JsonWriter& w) const {
  w.BeginObject();
  w.Key("tool").String(tool);
  w.Key("status").String(ToString(status));
  w.Key("exit_code").Int(ExitCode(status));
  w.Key("threads").Int(threads);
  w.Key("wall_ms").Double(wall_ms);
  w.Key("budget").BeginObject();
  w.Key("deadline_armed").Bool(budget.deadline_armed);
  w.Key("work_used").Uint(budget.work_used);
  w.Key("work_limit").Uint(budget.work_limit);
  w.Key("rows_used").Uint(budget.rows_used);
  w.Key("row_limit").Uint(budget.row_limit);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache.enabled);
  w.Key("hits").Uint(cache.hits);
  w.Key("misses").Uint(cache.misses);
  w.Key("evictions").Uint(cache.evictions);
  w.Key("bytes").Uint(cache.bytes);
  w.Key("capacity_bytes").Uint(cache.capacity_bytes);
  w.Key("entries").Uint(cache.entries);
  w.EndObject();
  w.Key("stats").BeginObject();
  w.Key("simd_level")
      .String(kernels::SimdLevelName(kernels::ActiveSimdLevel()));
  w.Key("arena_high_water_bytes").Uint(stats.arena_high_water_bytes);
  w.EndObject();
  w.Key("counters").BeginObject();
  for (const auto& [key, value] : counters.items()) {
    if (!counters.IsGauge(key)) w.Key(key).Uint(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [key, value] : counters.items()) {
    if (counters.IsGauge(key)) w.Key(key).Uint(value);
  }
  w.EndObject();
  w.Key("spans");
  WriteSpans(&w, trace.root);
  if (server.present) {
    w.Key("server").BeginObject();
    w.Key("request_id").Uint(server.request_id);
    w.Key("queue_ms").Double(server.queue_ms);
    w.Key("snapshot_epoch").Uint(server.snapshot_epoch);
    w.EndObject();
  }
  if (planner.present) {
    w.Key("planner").BeginObject();
    w.Key("pattern").String(planner.pattern);
    w.Key("threshold").Int(planner.threshold);
    w.Key("threshold_overridden").Bool(planner.threshold_overridden);
    w.Key("delegated").Bool(planner.delegated);
    w.Key("heavy_values").Uint(planner.heavy_values);
    w.Key("heavy_tuples").Uint(planner.heavy_tuples);
    w.Key("light_tuples").Uint(planner.light_tuples);
    w.Key("heavy_rows").Uint(planner.heavy_rows);
    w.Key("light_rows").Uint(planner.light_rows);
    w.EndObject();
  }
  if (ivm.present) {
    w.Key("ivm").BeginObject();
    w.Key("views").Uint(ivm.views);
    w.Key("updates").Uint(ivm.updates);
    w.Key("dirty_subtree_sweeps").Uint(ivm.dirty_subtree_sweeps);
    w.Key("rows_delta_applied").Uint(ivm.rows_delta_applied);
    w.Key("full_recomputes").Uint(ivm.full_recomputes);
    w.EndObject();
  }
  w.EndObject();
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  Emit(w);
  return w.Take();
}

bool RunReport::WriteJsonFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --report-json file %s\n", path.c_str());
    return false;
  }
  std::string json = ToJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace qc::util
