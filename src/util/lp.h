#ifndef QC_UTIL_LP_H_
#define QC_UTIL_LP_H_

#include <vector>

#include "util/fraction.h"

namespace qc::util {

/// A linear program in the form
///     minimize    c^T x
///     subject to  A_i x  (>=|<=|==)  b_i   for every row i
///                 x >= 0.
///
/// All data is exact-rational, and the solver returns exact optima. Intended
/// for the small LPs that arise in query analysis (fractional edge covers and
/// friends): dozens of variables, not thousands.
struct LpProblem {
  enum class Sense { kGe, kLe, kEq };

  struct Row {
    std::vector<Fraction> coeffs;  ///< One per variable.
    Sense sense = Sense::kGe;
    Fraction rhs;
  };

  int num_vars = 0;
  std::vector<Fraction> objective;  ///< One per variable.
  std::vector<Row> rows;

  /// Appends a constraint; `coeffs` must have `num_vars` entries.
  void AddRow(std::vector<Fraction> coeffs, Sense sense, Fraction rhs);
};

/// Result of solving an LpProblem.
struct LpSolution {
  enum class Status { kOptimal, kInfeasible, kUnbounded };

  Status status = Status::kInfeasible;
  Fraction objective;       ///< Valid when status == kOptimal.
  std::vector<Fraction> x;  ///< Optimal point, size num_vars.
};

/// Solves `problem` (minimization) with an exact two-phase dense simplex
/// using Bland's rule, so it always terminates.
LpSolution SolveLp(const LpProblem& problem);

/// Convenience wrapper: maximize c^T x under the same constraints.
LpSolution MaximizeLp(const LpProblem& problem);

}  // namespace qc::util

#endif  // QC_UTIL_LP_H_
