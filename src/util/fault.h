#ifndef QC_UTIL_FAULT_H_
#define QC_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/counters.h"
#include "util/fault_hook.h"

namespace qc::util {

/// Deterministic, seedable fault-injection registry.
///
/// Robust systems are exactly as good as their failure paths, and failure
/// paths that cannot be exercised rot. This registry names every injection
/// point the resilience layer owns (WAL I/O, socket read/write, arena and
/// index-cache allocation) and lets a test — or an operator via the
/// QC_FAULTS environment variable — script precisely when each one fires:
///
///   QC_FAULTS=wal.write:after=3,socket.read:prob=0.01,wal.fsync:once=2
///
/// Trigger kinds per point (one rule per point; the last spec wins):
///   after=N   every evaluation after the first N fails (persistent fault)
///   once=N    exactly the N-th evaluation fails (N is 1-based)
///   every=N   every N-th evaluation fails (N, 2N, 3N, ...)
///   prob=P    each evaluation fails with probability P in [0,1], drawn
///             from the registry's seeded xorshift stream — two runs with
///             the same seed and the same evaluation order fail at the
///             same points
///
/// The seed comes from Configure()'s argument (tests) or QC_FAULT_SEED
/// (environment; default 1). Every evaluation and every fire is counted
/// per point and exported as "fault.<point>.evals"/"fault.<point>.fires"
/// counters, so a RunReport or the server stats JSON shows exactly which
/// failure paths a run actually took.
///
/// Cost when idle: injection sites guard with FaultsEnabled(), a single
/// relaxed atomic load that is false unless some registry holds rules —
/// the hot paths (arena allocation) pay one predictable-branch load.
///
/// Threading: all members thread-safe behind one mutex (injection points
/// are I/O or allocation boundaries; the lock is never on a lock-free hot
/// path thanks to the FaultsEnabled() gate).
class FaultRegistry {
 public:
  struct PointStats {
    std::string point;
    std::uint64_t evals = 0;  ///< ShouldFail() calls for this point.
    std::uint64_t fires = 0;  ///< Evaluations that returned "fail".
  };

  FaultRegistry() = default;
  ~FaultRegistry();
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Replaces the rule set with a parsed spec ("" clears). False + error
  /// on a malformed spec, in which case the previous rules are kept.
  bool Configure(std::string_view spec, std::uint64_t seed,
                 std::string* error);

  /// Drops every rule (stats are kept until ResetStats).
  void Clear();

  /// True when this registry holds at least one rule.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Evaluates the named point: true = the caller must fail now. Points
  /// with no rule count an evaluation only if some rule exists at all
  /// (idle registries are never consulted thanks to FaultsEnabled()).
  bool ShouldFail(std::string_view point);

  /// Per-point evaluation/fire counts, sorted by point name.
  std::vector<PointStats> stats() const;

  /// Adds "fault.<point>.evals" / "fault.<point>.fires" counters for every
  /// point that was evaluated at least once.
  void ExportCounters(Counters* sink) const;

  void ResetStats();

  /// The process-wide registry, configured once from QC_FAULTS /
  /// QC_FAULT_SEED on first use (a malformed env spec is reported to
  /// stderr and ignored). Production injection sites use this instance;
  /// tests may Configure()/Clear() it around a scenario.
  static FaultRegistry& Global();

 private:
  struct Rule {
    enum class Kind { kAfter, kOnce, kEvery, kProb };
    Kind kind = Kind::kAfter;
    std::uint64_t n = 0;
    double prob = 0.0;
  };
  struct Point {
    std::string name;
    Rule rule;
    bool has_rule = false;
    std::uint64_t evals = 0;
    std::uint64_t fires = 0;
  };

  Point* FindLocked(std::string_view name);

  mutable std::mutex mu_;
  std::vector<Point> points_;
  std::uint64_t rng_ = 1;
  std::atomic<bool> active_{false};
};

// FaultsEnabled() / FaultPoint() live in util/fault_hook.h (header-only,
// link-free) so injection sites in leaf-library headers can use them; this
// header re-exports them via the include above.

}  // namespace qc::util

#endif  // QC_UTIL_FAULT_H_
