#ifndef QC_UTIL_ARENA_H_
#define QC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/fault_hook.h"

namespace qc::util {

/// Monotonic (bump) arena for per-query scratch.
///
/// Join evaluation allocates many short-lived buffers with identical
/// lifetime — leapfrog cursor arrays, trie-build range stacks, radix-sort
/// digit buffers, enumerator frontiers. Routing them through malloc costs a
/// lock-contended allocator round-trip per buffer, which under qc_serverd's
/// concurrency dominates small-query latency. An Arena instead carves them
/// out of geometrically-growing blocks with a pointer bump and releases
/// everything at once: Reset() recycles the capacity for the next query
/// without returning it to the system, so a warmed-up executor thread stops
/// calling malloc on the hot path entirely.
///
/// Not thread-safe: one Arena per query (serial engines) or per worker
/// chunk (parallel engines). Allocations are never individually freed;
/// trivially-destructible payloads only — the arena never runs destructors.
class Arena {
 public:
  /// First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kMinBlockBytes = 1 << 16;
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 26;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `align` must be a power of two. Never returns null (throws bad_alloc
  /// through operator new on exhaustion, like the containers it replaces).
  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~std::uintptr_t(align - 1);
    if (p + bytes > limit_) {
      NewBlock(bytes + align);
      p = (cursor_ + (align - 1)) & ~std::uintptr_t(align - 1);
    }
    cursor_ = p + bytes;
    used_ = allocated_before_current_ + (cursor_ - block_begin_);
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<void*>(p);
  }

  /// Uninitialized array of `n` trivially-destructible Ts.
  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty without releasing capacity: keeps the largest block
  /// (the steady-state footprint) and drops the rest, so repeated queries
  /// converge to zero mallocs. High-water accounting survives the reset.
  void Reset() {
    if (blocks_.size() > 1) {
      // Keep only the largest block; it is always the last one allocated
      // (block sizes are non-decreasing).
      Block keep = std::move(blocks_.back());
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    if (!blocks_.empty()) {
      block_begin_ = reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
      cursor_ = block_begin_;
      limit_ = block_begin_ + blocks_.back().bytes;
    }
    allocated_before_current_ = 0;
    used_ = 0;
  }

  /// Live bytes handed out since construction/Reset (excludes block slack).
  std::size_t bytes_used() const { return used_; }
  /// Maximum of bytes_used() over the arena's lifetime — the per-query
  /// scratch footprint reported in RunReport "stats".
  std::size_t high_water_bytes() const { return high_water_; }
  /// Total capacity currently held across blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.bytes;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

  void NewBlock(std::size_t at_least) {
    // The fault point sits on the block-refill slow path, not the
    // per-allocation pointer bump: "arena.alloc" failures look exactly
    // like a heap that ran out (bad_alloc), which api::ExecuteQuery
    // contains into a structured internal error. The idle cost is one
    // relaxed load per new block.
    if (FaultsEnabled() && FaultPoint("arena.alloc")) {
      throw std::bad_alloc();
    }
    allocated_before_current_ += cursor_ - block_begin_;
    std::size_t size = blocks_.empty() ? kMinBlockBytes
                                       : blocks_.back().bytes * 2;
    if (size > kMaxBlockBytes) size = kMaxBlockBytes;
    if (size < at_least) size = at_least;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_begin_ = reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
    cursor_ = block_begin_;
    limit_ = block_begin_ + size;
  }

  std::vector<Block> blocks_;
  std::uintptr_t block_begin_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t allocated_before_current_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace qc::util

#endif  // QC_UTIL_ARENA_H_
