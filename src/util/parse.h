#ifndef QC_UTIL_PARSE_H_
#define QC_UTIL_PARSE_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace qc::util {

/// A parse failure with the 1-based source position it occurred at.
/// Shared by every text front end (db/parser, csp/serialization) so callers
/// get one error shape regardless of which format failed.
struct ParseError {
  int line = 0;
  int column = 0;
  std::string message;

  /// "line L, column C: message".
  std::string ToString() const {
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column) + ": " + message;
  }
};

/// Outcome of a parse: either a value or a position-annotated error.
/// Replaces the old nullopt-plus-out-parameter reporting.
template <typename T>
struct ParseResult {
  std::optional<T> value;
  ParseError error;  ///< Meaningful only when !has_value().

  bool has_value() const { return value.has_value(); }
  explicit operator bool() const { return value.has_value(); }
  T& operator*() { return *value; }
  const T& operator*() const { return *value; }
  T* operator->() { return &*value; }
  const T* operator->() const { return &*value; }

  static ParseResult Ok(T v) {
    ParseResult r;
    r.value = std::move(v);
    return r;
  }
  static ParseResult Fail(ParseError e) {
    ParseResult r;
    r.error = std::move(e);
    return r;
  }
};

/// Computes the 1-based line/column of byte offset `pos` in `text` and wraps
/// `message` into a ParseError. O(pos) scan; parse errors are cold.
inline ParseError ErrorAtOffset(const std::string& text, std::size_t pos,
                                std::string message) {
  int line = 1, column = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return ParseError{line, column, std::move(message)};
}

/// Clips a (possibly attacker-sized) token for inclusion in an error
/// message: at most `max` bytes, non-printable bytes hex-escaped, with an
/// elision marker when clipped. Keeps a 10MB atom name from producing a
/// 10MB error string.
inline std::string ClipForError(std::string_view token, std::size_t max = 40) {
  std::string out;
  bool clipped = token.size() > max;
  std::size_t n = clipped ? max : token.size();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char c = static_cast<unsigned char>(token[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      static const char* kHex = "0123456789abcdef";
      out += "\\x";
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  if (clipped) {
    out += "... (";
    out += std::to_string(token.size());
    out += " bytes)";
  }
  return out;
}

}  // namespace qc::util

#endif  // QC_UTIL_PARSE_H_
