#include "util/fraction.h"

#include <cstdlib>
#include <numeric>
#include <ostream>

namespace qc::util {

namespace {

/// Narrows a 128-bit value to 64 bits, aborting on overflow.
std::int64_t Narrow(__int128 v) {
  if (v > INT64_MAX || v < INT64_MIN) std::abort();
  return static_cast<std::int64_t>(v);
}

}  // namespace

Fraction::Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) std::abort();
  Normalize();
}

void Fraction::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

double Fraction::ToDouble() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Fraction::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Fraction Fraction::operator-() const {
  Fraction r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Fraction Fraction::operator+(const Fraction& other) const {
  __int128 n = static_cast<__int128>(num_) * other.den_ +
               static_cast<__int128>(other.num_) * den_;
  __int128 d = static_cast<__int128>(den_) * other.den_;
  return Fraction(Narrow(n), Narrow(d));
}

Fraction Fraction::operator-(const Fraction& other) const {
  return *this + (-other);
}

Fraction Fraction::operator*(const Fraction& other) const {
  // Cross-reduce before multiplying to keep magnitudes small.
  std::int64_t a = num_, b = den_, c = other.num_, d = other.den_;
  std::int64_t g1 = std::gcd(a < 0 ? -a : a, d);
  std::int64_t g2 = std::gcd(c < 0 ? -c : c, b);
  if (g1 > 1) {
    a /= g1;
    d /= g1;
  }
  if (g2 > 1) {
    c /= g2;
    b /= g2;
  }
  __int128 n = static_cast<__int128>(a) * c;
  __int128 m = static_cast<__int128>(b) * d;
  return Fraction(Narrow(n), Narrow(m));
}

Fraction Fraction::operator/(const Fraction& other) const {
  if (other.num_ == 0) std::abort();
  Fraction inv;
  inv.num_ = other.den_;
  inv.den_ = other.num_;
  if (inv.den_ < 0) {
    inv.num_ = -inv.num_;
    inv.den_ = -inv.den_;
  }
  return *this * inv;
}

bool Fraction::operator<(const Fraction& other) const {
  return static_cast<__int128>(num_) * other.den_ <
         static_cast<__int128>(other.num_) * den_;
}

std::int64_t Fraction::Ceil() const {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

std::int64_t Fraction::Floor() const {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

std::ostream& operator<<(std::ostream& os, const Fraction& f) {
  return os << f.ToString();
}

}  // namespace qc::util
