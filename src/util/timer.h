#ifndef QC_UTIL_TIMER_H_
#define QC_UTIL_TIMER_H_

#include <chrono>

namespace qc::util {

/// Wall-clock stopwatch for the experiment harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qc::util

#endif  // QC_UTIL_TIMER_H_
