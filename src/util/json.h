#ifndef QC_UTIL_JSON_H_
#define QC_UTIL_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace qc::util {

/// Minimal streaming JSON writer shared by every machine-readable output in
/// the repo: util::RunReport::ToJson (the `--report-json` reports of
/// query_cli / fpt_toolbox / the E-harnesses) and bench::JsonReport (the
/// bench `--json` artifacts). Comma placement is handled automatically; the
/// caller is responsible for balancing Begin/End calls.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    PushScope();
    return *this;
  }
  JsonWriter& EndObject() {
    PopScope();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    PushScope();
    return *this;
  }
  JsonWriter& EndArray() {
    PopScope();
    out_ += ']';
    return *this;
  }

  /// Object key; the next value written belongs to it.
  JsonWriter& Key(std::string_view key) {
    Separate();
    AppendString(key);
    out_ += ": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view value) {
    Separate();
    AppendString(value);
    return *this;
  }
  JsonWriter& Uint(std::uint64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Int(std::int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& Null() {
    Separate();
    out_ += "null";
    return *this;
  }
  /// %.10g, matching the historical bench `--json` number format; NaN and
  /// infinities (not representable in JSON) become null.
  JsonWriter& Double(double value) {
    if (!std::isfinite(value)) return Null();
    Separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out_ += buf;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PushScope() {
    depth_ <<= 1;  // New scope: no element written yet.
  }
  void PopScope() {
    depth_ >>= 1;
    depth_ |= 1;  // The closed container counts as the parent's element.
  }
  /// Emits ", " before the second and later elements of the current scope.
  void Separate() {
    if (pending_key_) {
      pending_key_ = false;  // The value right after a key is never preceded
      return;                // by a comma of its own.
    }
    if (depth_ & 1) out_ += ", ";
    depth_ |= 1;
  }

  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  /// One bit per open scope: set once the scope has an element. 64 levels of
  /// nesting is far beyond anything the reports emit.
  std::uint64_t depth_ = 0;
  bool pending_key_ = false;
};

}  // namespace qc::util

#endif  // QC_UTIL_JSON_H_
