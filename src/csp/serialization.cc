#include "csp/serialization.h"

#include <charconv>
#include <sstream>

namespace qc::csp {

namespace {

/// A whitespace-delimited token with its 1-based column (embedded NUL bytes
/// are ordinary token characters; from_chars rejects them later).
struct Token {
  std::string_view text;
  int column;
};

std::vector<Token> SplitLine(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    tokens.push_back(
        {line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return tokens;
}

std::optional<long long> ParseInt(std::string_view token) {
  long long v = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::string ToText(const CspInstance& csp) {
  std::ostringstream out;
  out << "csp " << csp.num_vars << " " << csp.domain_size << "\n";
  for (const auto& c : csp.constraints) {
    out << "constraint " << c.relation.arity();
    for (int v : c.scope) out << " " << v;
    out << "\n";
    for (const auto& t : c.relation.tuples()) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        out << (i ? " " : "") << t[i];
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

util::ParseResult<CspInstance> ParseCsp(const std::string& text) {
  using Result = util::ParseResult<CspInstance>;
  CspInstance csp;
  bool have_header = false;
  int line_no = 0;

  std::optional<std::vector<int>> pending_scope;
  std::optional<Relation> pending_relation;

  auto fail = [&](int column, std::string message) {
    return Result::Fail(util::ParseError{line_no, column, std::move(message)});
  };

  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string_view line =
        std::string_view(text).substr(line_start, line_end - line_start);
    ++line_no;
    bool last_line = line_end == text.size();
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') {
      if (last_line) break;
      continue;
    }
    std::vector<Token> tokens = SplitLine(line);
    if (tokens.empty()) {
      if (last_line) break;
      continue;
    }
    const Token& head = tokens[0];
    if (head.text == "csp") {
      if (tokens.size() != 3) return fail(head.column, "bad header");
      auto nv = ParseInt(tokens[1].text);
      auto ds = ParseInt(tokens[2].text);
      if (!nv || *nv < 0 || *nv > kMaxCspVars) {
        return fail(tokens[1].column,
                    "bad variable count '" +
                        util::ClipForError(tokens[1].text) + "'");
      }
      if (!ds || *ds < 0 || *ds > kMaxCspDomain) {
        return fail(tokens[2].column,
                    "bad domain size '" + util::ClipForError(tokens[2].text) +
                        "'");
      }
      csp.num_vars = static_cast<int>(*nv);
      csp.domain_size = static_cast<int>(*ds);
      have_header = true;
    } else if (head.text == "constraint") {
      if (!have_header) return fail(head.column, "constraint before header");
      if (pending_scope) return fail(head.column, "nested constraint");
      if (tokens.size() < 2) return fail(head.column, "missing arity");
      auto arity = ParseInt(tokens[1].text);
      if (!arity || *arity < 1 || *arity > kMaxCspArity) {
        return fail(tokens[1].column,
                    "bad constraint arity '" +
                        util::ClipForError(tokens[1].text) + "'");
      }
      if (static_cast<long long>(tokens.size()) != 2 + *arity) {
        return fail(head.column, "scope has " +
                                     std::to_string(tokens.size() - 2) +
                                     " variables, arity says " +
                                     std::to_string(*arity));
      }
      std::vector<int> scope(static_cast<std::size_t>(*arity));
      for (std::size_t i = 0; i < scope.size(); ++i) {
        auto v = ParseInt(tokens[2 + i].text);
        if (!v || *v < 0 || *v >= csp.num_vars) {
          return fail(tokens[2 + i].column,
                      "bad scope variable '" +
                          util::ClipForError(tokens[2 + i].text) + "'");
        }
        scope[i] = static_cast<int>(*v);
      }
      pending_scope = std::move(scope);
      pending_relation = Relation(static_cast<int>(*arity));
    } else if (head.text == "end") {
      if (!pending_scope) return fail(head.column, "'end' without constraint");
      pending_relation->Seal();
      csp.AddConstraint(std::move(*pending_scope),
                        std::move(*pending_relation));
      pending_scope.reset();
      pending_relation.reset();
    } else {
      if (!pending_scope) return fail(head.column, "tuple outside constraint");
      if (tokens.size() != pending_scope->size()) {
        return fail(head.column,
                    "tuple has " + std::to_string(tokens.size()) +
                        " values, constraint arity is " +
                        std::to_string(pending_scope->size()));
      }
      std::vector<int> tuple(tokens.size());
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        auto v = ParseInt(tokens[i].text);
        if (!v || *v < 0 || *v >= csp.domain_size) {
          return fail(tokens[i].column,
                      "bad tuple value '" +
                          util::ClipForError(tokens[i].text) + "'");
        }
        tuple[i] = static_cast<int>(*v);
      }
      pending_relation->Add(std::move(tuple));
    }
    if (last_line) break;
  }
  if (!have_header) {
    return Result::Fail(util::ParseError{1, 1, "missing header"});
  }
  if (pending_scope) {
    return Result::Fail(
        util::ParseError{line_no, 1, "unterminated constraint"});
  }
  return Result::Ok(std::move(csp));
}

std::optional<CspInstance> FromText(const std::string& text,
                                    std::string* error) {
  util::ParseResult<CspInstance> parsed = ParseCsp(text);
  if (!parsed) {
    if (error != nullptr) *error = parsed.error.ToString();
    return std::nullopt;
  }
  return std::move(*parsed);
}

}  // namespace qc::csp
