#include "csp/serialization.h"

#include <sstream>

namespace qc::csp {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::string ToText(const CspInstance& csp) {
  std::ostringstream out;
  out << "csp " << csp.num_vars << " " << csp.domain_size << "\n";
  for (const auto& c : csp.constraints) {
    out << "constraint " << c.relation.arity();
    for (int v : c.scope) out << " " << v;
    out << "\n";
    for (const auto& t : c.relation.tuples()) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        out << (i ? " " : "") << t[i];
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

std::optional<CspInstance> FromText(const std::string& text,
                                    std::string* error) {
  std::istringstream in(text);
  std::string line;
  CspInstance csp;
  bool have_header = false;
  int line_no = 0;

  std::optional<std::vector<int>> pending_scope;
  std::optional<Relation> pending_relation;

  auto fail = [&](const std::string& message) {
    SetError(error, "line " + std::to_string(line_no) + ": " + message);
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    if (line.rfind("csp ", 0) == 0) {
      ls >> keyword >> csp.num_vars >> csp.domain_size;
      if (ls.fail() || csp.num_vars < 0 || csp.domain_size < 0) {
        return fail("bad header");
      }
      have_header = true;
    } else if (line.rfind("constraint", 0) == 0) {
      if (!have_header) return fail("constraint before header");
      if (pending_scope) return fail("nested constraint");
      int arity = 0;
      ls >> keyword >> arity;
      if (ls.fail() || arity < 1) return fail("bad constraint arity");
      std::vector<int> scope(arity);
      for (int& v : scope) {
        ls >> v;
        if (ls.fail() || v < 0 || v >= csp.num_vars) {
          return fail("bad scope variable");
        }
      }
      pending_scope = std::move(scope);
      pending_relation = Relation(arity);
    } else if (line.rfind("end", 0) == 0) {
      if (!pending_scope) return fail("'end' without constraint");
      pending_relation->Seal();
      csp.AddConstraint(std::move(*pending_scope),
                        std::move(*pending_relation));
      pending_scope.reset();
      pending_relation.reset();
    } else {
      if (!pending_scope) return fail("tuple outside constraint");
      std::vector<int> tuple(pending_scope->size());
      for (int& v : tuple) {
        ls >> v;
        if (ls.fail() || v < 0 || v >= csp.domain_size) {
          return fail("bad tuple value");
        }
      }
      pending_relation->Add(std::move(tuple));
    }
  }
  if (!have_header) {
    SetError(error, "missing header");
    return std::nullopt;
  }
  if (pending_scope) {
    SetError(error, "unterminated constraint");
    return std::nullopt;
  }
  return csp;
}

}  // namespace qc::csp
