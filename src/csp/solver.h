#ifndef QC_CSP_SOLVER_H_
#define QC_CSP_SOLVER_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "csp/csp.h"

namespace qc::csp {

/// Search statistics for the experiment harness.
struct SearchStats {
  std::uint64_t nodes = 0;        ///< Assignments tried.
  std::uint64_t backtracks = 0;   ///< Dead ends.
  std::uint64_t consistency_checks = 0;
};

/// Result of a satisfiability search.
struct CspSolution {
  bool found = false;
  std::vector<int> assignment;  ///< One value per variable, when found.
  SearchStats stats;
};

/// Backtracking search with minimum-remaining-values variable ordering and
/// forward checking — the standard general-purpose CSP solver this library
/// offers next to the structure-exploiting ones.
class BacktrackingSolver {
 public:
  struct Options {
    bool forward_checking = true;
    bool mrv = true;  ///< Minimum-remaining-values order (else index order).
    std::uint64_t max_nodes = 0;  ///< 0 = unlimited.
  };

  BacktrackingSolver();
  explicit BacktrackingSolver(Options options) : options_(options) {}

  /// Finds one solution.
  CspSolution Solve(const CspInstance& csp);

  /// Counts all solutions (full enumeration).
  std::uint64_t CountSolutions(const CspInstance& csp, SearchStats* stats);

  /// Invokes `callback` with each solution; stops early when the callback
  /// returns false. Returns the number of solutions visited.
  std::uint64_t EnumerateSolutions(
      const CspInstance& csp,
      const std::function<bool(const std::vector<int>&)>& callback);

  /// True if the last Solve hit max_nodes.
  bool aborted() const { return aborted_; }

 private:
  Options options_;
  bool aborted_ = false;
};

/// Plain |D|^|V| enumeration — the "brute force" baseline whose optimality
/// the ETH results (Theorem 6.4) assert.
CspSolution SolveBruteForce(const CspInstance& csp);

/// Brute-force solution count.
std::uint64_t CountSolutionsBruteForce(const CspInstance& csp);

}  // namespace qc::csp

#endif  // QC_CSP_SOLVER_H_
