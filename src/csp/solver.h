#ifndef QC_CSP_SOLVER_H_
#define QC_CSP_SOLVER_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "csp/csp.h"
#include "util/budget.h"

namespace qc::csp {

/// Search statistics for the experiment harness.
struct SearchStats {
  std::uint64_t nodes = 0;        ///< Assignments tried.
  std::uint64_t backtracks = 0;   ///< Dead ends.
  std::uint64_t consistency_checks = 0;
};

/// Result of a satisfiability search. When `status != kCompleted` the search
/// gave up (budget trip or max_nodes) and `found == false` means *Unknown*,
/// not unsatisfiable; `stats` still reports the effort spent.
struct CspSolution {
  bool found = false;
  std::vector<int> assignment;  ///< One value per variable, when found.
  SearchStats stats;
  util::RunStatus status = util::RunStatus::kCompleted;
};

/// Backtracking search with minimum-remaining-values variable ordering and
/// forward checking — the standard general-purpose CSP solver this library
/// offers next to the structure-exploiting ones.
class BacktrackingSolver {
 public:
  struct Options {
    bool forward_checking = true;
    bool mrv = true;  ///< Minimum-remaining-values order (else index order).
    std::uint64_t max_nodes = 0;  ///< 0 = unlimited.
    /// Optional cooperative budget, polled once per search node.
    util::Budget* budget = nullptr;
  };

  BacktrackingSolver();
  explicit BacktrackingSolver(Options options) : options_(options) {}

  /// Finds one solution.
  CspSolution Solve(const CspInstance& csp);

  /// Counts all solutions (full enumeration).
  std::uint64_t CountSolutions(const CspInstance& csp, SearchStats* stats);

  /// Invokes `callback` with each solution; stops early when the callback
  /// returns false. Returns the number of solutions visited.
  std::uint64_t EnumerateSolutions(
      const CspInstance& csp,
      const std::function<bool(const std::vector<int>&)>& callback);

  /// True if the last Solve/Count/Enumerate hit max_nodes or a tripped
  /// budget (CspSolution::status distinguishes the causes).
  bool aborted() const { return aborted_; }

 private:
  Options options_;
  bool aborted_ = false;
};

/// Plain |D|^|V| enumeration — the "brute force" baseline whose optimality
/// the ETH results (Theorem 6.4) assert.
CspSolution SolveBruteForce(const CspInstance& csp);

/// Brute-force solution count.
std::uint64_t CountSolutionsBruteForce(const CspInstance& csp);

}  // namespace qc::csp

#endif  // QC_CSP_SOLVER_H_
