#ifndef QC_CSP_CSP_H_
#define QC_CSP_CSP_H_

#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace qc::csp {

/// Extensional relation over the integer domain [0, D): a set of tuples.
/// Tuples are kept sorted for binary-search membership.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Adds a tuple (arity must match); call Seal() before Contains.
  void Add(std::vector<int> tuple);
  /// Sorts and deduplicates; idempotent. Add() after Seal() is allowed but
  /// requires another Seal().
  void Seal();

  bool Contains(const std::vector<int>& tuple) const;
  const std::vector<std::vector<int>>& tuples() const { return tuples_; }

 private:
  int arity_;
  bool sealed_ = false;
  std::vector<std::vector<int>> tuples_;
};

/// A CSP instance I = (V, D, C) as in Section 2.2, with V = {0..num_vars-1}
/// and D = {0..domain_size-1}.
struct CspInstance {
  int num_vars = 0;
  int domain_size = 0;

  struct Constraint {
    std::vector<int> scope;  ///< Variables, in relation-column order.
    Relation relation;
  };
  std::vector<Constraint> constraints;

  /// Adds a constraint; seals the relation.
  void AddConstraint(std::vector<int> scope, Relation relation);

  /// True if every constraint is binary.
  bool IsBinary() const;

  /// Number of input "cells": sum of |scope| * |relation| — the n that the
  /// paper's running-time bounds are stated against.
  long long InputSize() const;

  /// True if `assignment` (one value per variable) satisfies everything.
  bool Check(const std::vector<int>& assignment) const;

  /// Primal (Gaifman) graph on the variables.
  graph::Graph PrimalGraph() const;

  /// Constraint hypergraph (one hyperedge per constraint scope).
  graph::Hypergraph ConstraintHypergraph() const;
};

/// Microstructure construction of Section 2.3: vertices w_{v,d} for each
/// variable/value pair, adjacent iff the pair of assignments is jointly
/// allowed; solving the CSP becomes partitioned subgraph isomorphism of the
/// primal graph into this graph. Only defined for binary instances.
struct Microstructure {
  graph::Graph graph;         ///< |V| * |D| vertices.
  std::vector<int> class_of;  ///< Partition: vertex -> its variable.

  static int VertexOf(int variable, int value, int domain_size) {
    return variable * domain_size + value;
  }
};
Microstructure BuildMicrostructure(const CspInstance& csp);

}  // namespace qc::csp

#endif  // QC_CSP_CSP_H_
