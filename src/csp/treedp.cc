#include "csp/treedp.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace qc::csp {

namespace {

/// A bag's DP table: valid assignments of the bag's variables with the
/// number of extensions to the bag's subtree.
struct BagTable {
  std::vector<std::vector<int>> assignments;  ///< Bag-variable values.
  std::vector<std::uint64_t> counts;
  /// Index of the child-table row chosen per assignment per child is not
  /// stored; witnesses are recovered by re-matching projections top-down.
};

std::vector<int> Project(const std::vector<int>& bag_vars,
                         const std::vector<int>& values,
                         const std::vector<int>& onto) {
  std::vector<int> out;
  out.reserve(onto.size());
  for (int v : onto) {
    auto it = std::find(bag_vars.begin(), bag_vars.end(), v);
    out.push_back(values[it - bag_vars.begin()]);
  }
  return out;
}

}  // namespace

TreeDpResult SolveWithDecomposition(const CspInstance& csp,
                                    const graph::TreeDecomposition& td,
                                    util::Budget* budget) {
  TreeDpResult result;
  result.width_used = td.Width();
  const int nb = static_cast<int>(td.bags.size());
  if (nb == 0) {
    // Empty decomposition: satisfiable iff no variables and no violated
    // zero-ary constraints.
    result.satisfiable = csp.num_vars == 0;
    result.solution_count = result.satisfiable ? 1 : 0;
    return result;
  }

  // Assign each constraint to one bag containing its whole scope.
  std::vector<std::vector<int>> constraints_of_bag(nb);
  for (int ci = 0; ci < static_cast<int>(csp.constraints.size()); ++ci) {
    const auto& scope = csp.constraints[ci].scope;
    int home = -1;
    for (int t = 0; t < nb && home < 0; ++t) {
      bool inside = true;
      for (int v : scope) {
        if (!std::binary_search(td.bags[t].begin(), td.bags[t].end(), v)) {
          inside = false;
          break;
        }
      }
      if (inside) home = t;
    }
    if (home < 0) std::abort();  // Not a decomposition of the primal graph.
    constraints_of_bag[home].push_back(ci);
  }

  // Root the tree at 0 and order bags for bottom-up processing.
  std::vector<std::vector<int>> adj(nb), children(nb);
  for (auto [a, b] : td.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> order, parent(nb, -1);
  std::vector<bool> seen(nb, false);
  order.reserve(nb);
  order.push_back(0);
  seen[0] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    int t = order[head];
    for (int u : adj[t]) {
      if (!seen[u]) {
        seen[u] = true;
        parent[u] = t;
        children[t].push_back(u);
        order.push_back(u);
      }
    }
  }
  if (static_cast<int>(order.size()) != nb) std::abort();  // Not a tree.

  // Bottom-up DP.
  std::vector<BagTable> tables(nb);
  // Per bag: child -> (projection of child assignment onto shared vars ->
  // summed counts). Kept for witness extraction.
  std::vector<std::vector<int>> shared_vars(nb);  // With parent.
  for (int idx = nb - 1; idx >= 0; --idx) {
    int t = order[idx];
    const auto& bag = td.bags[t];
    const int bsize = static_cast<int>(bag.size());
    // Precompute child projection maps.
    struct ChildMap {
      int child;
      std::vector<int> shared;
      std::map<std::vector<int>, std::uint64_t> sums;
    };
    std::vector<ChildMap> child_maps;
    for (int c : children[t]) {
      ChildMap cm;
      cm.child = c;
      for (int v : td.bags[c]) {
        if (std::binary_search(bag.begin(), bag.end(), v)) {
          cm.shared.push_back(v);
        }
      }
      const BagTable& ct = tables[c];
      for (std::size_t i = 0; i < ct.assignments.size(); ++i) {
        if (ct.counts[i] == 0) continue;
        cm.sums[Project(td.bags[c], ct.assignments[i], cm.shared)] +=
            ct.counts[i];
      }
      child_maps.push_back(std::move(cm));
    }

    // Enumerate the |D|^|bag| bag assignments with an odometer.
    std::vector<int> values(bsize, 0);
    unsigned long long total_rows = 1;
    for (int i = 0; i < bsize; ++i) {
      total_rows *= static_cast<unsigned long long>(csp.domain_size);
    }
    for (unsigned long long row = 0; row < total_rows; ++row) {
      // Safe point per table row — the |D|^{k+1} factor that blows up.
      if (budget != nullptr && budget->ChargeWork(1)) {
        result.status = budget->status();
        return result;
      }
      ++result.table_entries;
      // Check this bag's constraints.
      bool ok = true;
      std::vector<int> tuple;
      for (int ci : constraints_of_bag[t]) {
        const auto& c = csp.constraints[ci];
        tuple = Project(bag, values, c.scope);
        if (!c.relation.Contains(tuple)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        std::uint64_t count = 1;
        for (const auto& cm : child_maps) {
          auto it = cm.sums.find(Project(bag, values, cm.shared));
          if (it == cm.sums.end()) {
            count = 0;
            break;
          }
          count *= it->second;
        }
        if (count > 0) {
          tables[t].assignments.push_back(values);
          tables[t].counts.push_back(count);
        }
      }
      // Advance the odometer.
      for (int i = 0; i < bsize; ++i) {
        if (++values[i] < csp.domain_size) break;
        values[i] = 0;
      }
    }
  }

  const BagTable& root = tables[0];
  for (std::uint64_t c : root.counts) result.solution_count += c;
  result.satisfiable = result.solution_count > 0;
  if (!result.satisfiable) return result;

  // Witness extraction, top-down: fix a root row, then for each child pick
  // any surviving row matching on the shared variables.
  result.assignment.assign(csp.num_vars, 0);
  std::vector<int> chosen_row(nb, -1);
  for (std::size_t i = 0; i < root.counts.size(); ++i) {
    if (root.counts[i] > 0) {
      chosen_row[0] = static_cast<int>(i);
      break;
    }
  }
  for (int idx = 0; idx < nb; ++idx) {
    int t = order[idx];
    const auto& bag = td.bags[t];
    const auto& values = tables[t].assignments[chosen_row[t]];
    for (int i = 0; i < static_cast<int>(bag.size()); ++i) {
      result.assignment[bag[i]] = values[i];
    }
    for (int c : children[t]) {
      std::vector<int> shared;
      for (int v : td.bags[c]) {
        if (std::binary_search(bag.begin(), bag.end(), v)) {
          shared.push_back(v);
        }
      }
      std::vector<int> want = Project(bag, values, shared);
      for (std::size_t i = 0; i < tables[c].assignments.size(); ++i) {
        if (tables[c].counts[i] > 0 &&
            Project(td.bags[c], tables[c].assignments[i], shared) == want) {
          chosen_row[c] = static_cast<int>(i);
          break;
        }
      }
      if (chosen_row[c] < 0) std::abort();  // DP invariant violated.
    }
  }
  return result;
}

TreeDpResult SolveTreewidthDp(const CspInstance& csp, int exact_below,
                              int threads, util::Budget* budget) {
  graph::Graph primal = csp.PrimalGraph();
  graph::TreeDecomposition td;
  bool have_exact = false;
  if (primal.num_vertices() <= exact_below) {
    graph::ExactTreewidthResult tw =
        graph::ExactTreewidth(primal, 24, threads, budget);
    if (tw.status == util::RunStatus::kCompleted) {
      td = std::move(tw.decomposition);
      have_exact = true;
    }
  }
  if (!have_exact) {
    // Heuristic fallback (also when the exact search was cut off — the DP
    // below re-polls the budget immediately, so a tripped run stays prompt).
    td = graph::HeuristicTreewidth(primal).decomposition;
  }
  return SolveWithDecomposition(csp, td, budget);
}

}  // namespace qc::csp
