#ifndef QC_CSP_GENERATORS_H_
#define QC_CSP_GENERATORS_H_

#include "csp/csp.h"
#include "util/rng.h"

namespace qc::csp {

/// Random binary CSP with one constraint per edge of `structure`; each value
/// pair is allowed independently with probability 1 - tightness.
CspInstance RandomBinaryCsp(const graph::Graph& structure, int domain_size,
                            double tightness, util::Rng* rng);

/// Like RandomBinaryCsp, but a hidden solution is drawn first and every
/// constraint is forced to allow it, so the instance is satisfiable.
CspInstance PlantedBinaryCsp(const graph::Graph& structure, int domain_size,
                             double tightness, util::Rng* rng,
                             std::vector<int>* hidden = nullptr);

/// Graph k-colouring as a CSP: variables = vertices, domain = colours,
/// disequality constraint per edge.
CspInstance ColoringCsp(const graph::Graph& g, int num_colors);

/// The full binary disequality relation on [0, domain_size).
Relation DisequalityRelation(int domain_size);

/// The binary equality relation on [0, domain_size).
Relation EqualityRelation(int domain_size);

/// Relation from an explicit list of allowed pairs.
Relation BinaryRelationFromPairs(
    const std::vector<std::pair<int, int>>& pairs);

}  // namespace qc::csp

#endif  // QC_CSP_GENERATORS_H_
