#ifndef QC_CSP_ARC_CONSISTENCY_H_
#define QC_CSP_ARC_CONSISTENCY_H_

#include <vector>

#include "csp/csp.h"

namespace qc::csp {

/// Result of enforcing arc consistency.
struct AcResult {
  /// alive[v][d] — value d survives for variable v.
  std::vector<std::vector<char>> alive;
  bool consistent = true;  ///< False if some domain was wiped out.
  std::uint64_t revisions = 0;
};

/// AC-3 on a binary CSP: removes every value without a support in each
/// binary constraint, to a fixpoint. Soundness invariant (covered by
/// property tests): no removed value participates in any solution.
/// Aborts if the instance is not binary.
AcResult EnforceArcConsistency(const CspInstance& csp);

/// Applies an AcResult by shrinking constraint relations and recording the
/// surviving domain values per variable; useful as a preprocessing step
/// before search. Returns the restricted instance (same variable ids).
CspInstance RestrictToAlive(const CspInstance& csp,
                            const std::vector<std::vector<char>>& alive);

}  // namespace qc::csp

#endif  // QC_CSP_ARC_CONSISTENCY_H_
