#include "csp/gac.h"

#include <deque>
#include <set>

namespace qc::csp {

AcResult EnforceGeneralizedArcConsistency(const CspInstance& csp) {
  AcResult result;
  result.alive.assign(csp.num_vars, std::vector<char>(csp.domain_size, 1));
  const int m = static_cast<int>(csp.constraints.size());

  // Work queue of (constraint, scope position) pairs to revise.
  std::deque<std::pair<int, int>> queue;
  std::set<std::pair<int, int>> queued;
  auto enqueue = [&](int ci, int pos) {
    if (queued.insert({ci, pos}).second) queue.emplace_back(ci, pos);
  };
  std::vector<std::vector<int>> constraints_of(csp.num_vars);
  for (int ci = 0; ci < m; ++ci) {
    const auto& scope = csp.constraints[ci].scope;
    for (int pos = 0; pos < static_cast<int>(scope.size()); ++pos) {
      enqueue(ci, pos);
      constraints_of[scope[pos]].push_back(ci);
    }
  }

  while (!queue.empty()) {
    auto [ci, pos] = queue.front();
    queue.pop_front();
    queued.erase({ci, pos});
    const auto& c = csp.constraints[ci];
    int var = c.scope[pos];
    ++result.revisions;

    // Supported values of `var` at `pos`: tuples whose every entry is alive.
    std::vector<char> supported(csp.domain_size, 0);
    for (const auto& tuple : c.relation.tuples()) {
      bool ok = true;
      for (std::size_t i = 0; i < c.scope.size(); ++i) {
        if (!result.alive[c.scope[i]][tuple[i]]) {
          ok = false;
          break;
        }
      }
      if (ok) supported[tuple[pos]] = 1;
    }
    bool revised = false;
    for (int d = 0; d < csp.domain_size; ++d) {
      if (result.alive[var][d] && !supported[d]) {
        result.alive[var][d] = 0;
        revised = true;
      }
    }
    if (!revised) continue;
    bool empty = true;
    for (int d = 0; d < csp.domain_size; ++d) {
      if (result.alive[var][d]) {
        empty = false;
        break;
      }
    }
    if (empty) {
      result.consistent = false;
      return result;
    }
    // Re-revise every other position of every constraint on `var`.
    for (int cj : constraints_of[var]) {
      const auto& scope = csp.constraints[cj].scope;
      for (int p = 0; p < static_cast<int>(scope.size()); ++p) {
        if (cj == ci && p == pos) continue;
        if (scope[p] != var) enqueue(cj, p);
      }
    }
  }
  return result;
}

}  // namespace qc::csp

namespace qc::csp {

CspSolution SolveWithGacPreprocessing(const CspInstance& csp) {
  AcResult gac = EnforceGeneralizedArcConsistency(csp);
  if (!gac.consistent) return CspSolution{};
  CspInstance restricted = RestrictToAlive(csp, gac.alive);
  return BacktrackingSolver().Solve(restricted);
}

}  // namespace qc::csp
