#ifndef QC_CSP_GAC_H_
#define QC_CSP_GAC_H_

#include "csp/arc_consistency.h"
#include "csp/solver.h"

namespace qc::csp {

/// Generalized arc consistency (GAC-3) for constraints of any arity:
/// removes every value that has no supporting tuple in some constraint,
/// given the other variables' current domains, to a fixpoint. On binary
/// instances this coincides with EnforceArcConsistency.
AcResult EnforceGeneralizedArcConsistency(const CspInstance& csp);

/// Backtracking search after a GAC preprocessing pass: enforces GAC once,
/// answers immediately on a domain wipe-out, and otherwise searches the
/// restricted instance. Sound and complete (GAC never removes solution
/// values — a property-tested invariant).
CspSolution SolveWithGacPreprocessing(const CspInstance& csp);

}  // namespace qc::csp

#endif  // QC_CSP_GAC_H_
