#include "csp/csp.h"

#include <algorithm>
#include <cstdlib>

namespace qc::csp {

void Relation::Add(std::vector<int> tuple) {
  if (static_cast<int>(tuple.size()) != arity_) std::abort();
  tuples_.push_back(std::move(tuple));
  sealed_ = false;
}

void Relation::Seal() {
  if (sealed_) return;
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  sealed_ = true;
}

bool Relation::Contains(const std::vector<int>& tuple) const {
  if (!sealed_) std::abort();
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

void CspInstance::AddConstraint(std::vector<int> scope, Relation relation) {
  if (scope.size() != static_cast<std::size_t>(relation.arity())) {
    std::abort();
  }
  relation.Seal();
  constraints.push_back(Constraint{std::move(scope), std::move(relation)});
}

bool CspInstance::IsBinary() const {
  for (const auto& c : constraints) {
    if (c.scope.size() != 2) return false;
  }
  return true;
}

long long CspInstance::InputSize() const {
  long long total = num_vars + domain_size;
  for (const auto& c : constraints) {
    total += static_cast<long long>(c.scope.size()) * (c.relation.size() + 1);
  }
  return total;
}

bool CspInstance::Check(const std::vector<int>& assignment) const {
  std::vector<int> tuple;
  for (const auto& c : constraints) {
    tuple.clear();
    for (int v : c.scope) tuple.push_back(assignment[v]);
    if (!c.relation.Contains(tuple)) return false;
  }
  return true;
}

graph::Graph CspInstance::PrimalGraph() const {
  graph::Graph g(num_vars);
  for (const auto& c : constraints) {
    for (std::size_t i = 0; i < c.scope.size(); ++i) {
      for (std::size_t j = i + 1; j < c.scope.size(); ++j) {
        if (c.scope[i] != c.scope[j]) g.AddEdge(c.scope[i], c.scope[j]);
      }
    }
  }
  return g;
}

graph::Hypergraph CspInstance::ConstraintHypergraph() const {
  graph::Hypergraph h(num_vars);
  for (const auto& c : constraints) h.AddEdge(c.scope);
  return h;
}

Microstructure BuildMicrostructure(const CspInstance& csp) {
  if (!csp.IsBinary()) std::abort();
  const int n = csp.num_vars, d = csp.domain_size;
  Microstructure ms{graph::Graph(n * d), std::vector<int>(n * d)};
  for (int v = 0; v < n; ++v) {
    for (int val = 0; val < d; ++val) {
      ms.class_of[Microstructure::VertexOf(v, val, d)] = v;
    }
  }
  // For each constrained pair, add edges for jointly allowed value pairs
  // (a pair must be allowed by every constraint over it).
  std::vector<int> tuple(2);
  const graph::Graph primal = csp.PrimalGraph();
  for (auto [u, v] : primal.Edges()) {
    for (int a = 0; a < d; ++a) {
      for (int b = 0; b < d; ++b) {
        bool ok = true;
        for (const auto& c : csp.constraints) {
          if (c.scope[0] == u && c.scope[1] == v) {
            tuple[0] = a;
            tuple[1] = b;
          } else if (c.scope[0] == v && c.scope[1] == u) {
            tuple[0] = b;
            tuple[1] = a;
          } else {
            continue;
          }
          if (!c.relation.Contains(tuple)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          ms.graph.AddEdge(Microstructure::VertexOf(u, a, d),
                           Microstructure::VertexOf(v, b, d));
        }
      }
    }
  }
  return ms;
}

}  // namespace qc::csp
