#ifndef QC_CSP_TREEDP_H_
#define QC_CSP_TREEDP_H_

#include <cstdint>
#include <vector>

#include "csp/csp.h"
#include "graph/treewidth.h"
#include "util/budget.h"

namespace qc::csp {

/// Result of the tree-decomposition dynamic program. When
/// `status != kCompleted` the DP was cut off by its budget: satisfiable/
/// solution_count are meaningless (*Unknown*), but table_entries still
/// reports the work done.
struct TreeDpResult {
  bool satisfiable = false;
  std::vector<int> assignment;      ///< A witness, when satisfiable.
  std::uint64_t solution_count = 0; ///< Exact count (may wrap for huge counts).
  std::uint64_t table_entries = 0;  ///< Total bag-assignment rows touched —
                                    ///< the |V| * |D|^{k+1} work measure of
                                    ///< Theorem 4.2.
  int width_used = -1;              ///< Width of the decomposition used.
  util::RunStatus status = util::RunStatus::kCompleted;
};

/// Freuder's algorithm (Theorem 4.2): solves and counts a CSP by dynamic
/// programming over the given tree decomposition of its primal graph.
/// Charges `budget` one work step per bag-assignment row.
///
/// Every constraint scope is a clique of the primal graph and therefore lies
/// inside some bag; aborts if the decomposition misses one (i.e. it is not a
/// valid decomposition of the primal graph).
TreeDpResult SolveWithDecomposition(const CspInstance& csp,
                                    const graph::TreeDecomposition& td,
                                    util::Budget* budget = nullptr);

/// Convenience: builds a heuristic tree decomposition of the primal graph
/// (min-degree / min-fill, exact for small graphs when `exact_below` vertices
/// or fewer) and runs the DP. `threads` parallelizes the exact-treewidth
/// per-component DP (0 = QC_THREADS). The budget covers both the
/// decomposition search and the DP itself.
TreeDpResult SolveTreewidthDp(const CspInstance& csp, int exact_below = 16,
                              int threads = 0, util::Budget* budget = nullptr);

}  // namespace qc::csp

#endif  // QC_CSP_TREEDP_H_
