#ifndef QC_CSP_SERIALIZATION_H_
#define QC_CSP_SERIALIZATION_H_

#include <optional>
#include <string>

#include "csp/csp.h"

namespace qc::csp {

/// Serializes a CSP instance in a simple line format:
///
///   csp <num_vars> <domain_size>
///   constraint <arity> <scope vars...>
///   <tuple values...>        (one line per allowed tuple)
///   end
///   ...
///
/// Lines starting with '#' are comments.
std::string ToText(const CspInstance& csp);

/// Parses the ToText format; returns nullopt (with a message in *error) on
/// malformed input.
std::optional<CspInstance> FromText(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace qc::csp

#endif  // QC_CSP_SERIALIZATION_H_
