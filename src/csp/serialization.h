#ifndef QC_CSP_SERIALIZATION_H_
#define QC_CSP_SERIALIZATION_H_

#include <optional>
#include <string>

#include "csp/csp.h"
#include "util/parse.h"

namespace qc::csp {

/// Hardening caps on untrusted CSP text: inputs past these are rejected with
/// a position-annotated error rather than allocated (a 5-billion-ary
/// constraint, an implausible variable count).
inline constexpr long long kMaxCspArity = 1024;
inline constexpr long long kMaxCspVars = 1LL << 26;
inline constexpr long long kMaxCspDomain = 1LL << 26;

/// Serializes a CSP instance in a simple line format:
///
///   csp <num_vars> <domain_size>
///   constraint <arity> <scope vars...>
///   <tuple values...>        (one line per allowed tuple)
///   end
///   ...
///
/// Lines starting with '#' are comments.
std::string ToText(const CspInstance& csp);

/// Parses the ToText format with 1-based line/column positions on failure —
/// the same error shape as db/parser.
util::ParseResult<CspInstance> ParseCsp(const std::string& text);

/// Legacy wrapper over ParseCsp: returns nullopt with the rendered
/// "line L, column C: message" in *error on malformed input.
std::optional<CspInstance> FromText(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace qc::csp

#endif  // QC_CSP_SERIALIZATION_H_
