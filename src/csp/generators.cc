#include "csp/generators.h"

namespace qc::csp {

CspInstance RandomBinaryCsp(const graph::Graph& structure, int domain_size,
                            double tightness, util::Rng* rng) {
  CspInstance csp;
  csp.num_vars = structure.num_vertices();
  csp.domain_size = domain_size;
  for (auto [u, v] : structure.Edges()) {
    Relation r(2);
    for (int a = 0; a < domain_size; ++a) {
      for (int b = 0; b < domain_size; ++b) {
        if (!rng->NextBool(tightness)) r.Add({a, b});
      }
    }
    csp.AddConstraint({u, v}, std::move(r));
  }
  return csp;
}

CspInstance PlantedBinaryCsp(const graph::Graph& structure, int domain_size,
                             double tightness, util::Rng* rng,
                             std::vector<int>* hidden) {
  std::vector<int> solution(structure.num_vertices());
  for (auto& v : solution) {
    v = static_cast<int>(rng->NextBounded(domain_size));
  }
  CspInstance csp;
  csp.num_vars = structure.num_vertices();
  csp.domain_size = domain_size;
  for (auto [u, v] : structure.Edges()) {
    Relation r(2);
    for (int a = 0; a < domain_size; ++a) {
      for (int b = 0; b < domain_size; ++b) {
        bool keep = (a == solution[u] && b == solution[v]) ||
                    !rng->NextBool(tightness);
        if (keep) r.Add({a, b});
      }
    }
    csp.AddConstraint({u, v}, std::move(r));
  }
  if (hidden != nullptr) *hidden = solution;
  return csp;
}

CspInstance ColoringCsp(const graph::Graph& g, int num_colors) {
  CspInstance csp;
  csp.num_vars = g.num_vertices();
  csp.domain_size = num_colors;
  Relation neq = DisequalityRelation(num_colors);
  for (auto [u, v] : g.Edges()) csp.AddConstraint({u, v}, neq);
  return csp;
}

Relation DisequalityRelation(int domain_size) {
  Relation r(2);
  for (int a = 0; a < domain_size; ++a) {
    for (int b = 0; b < domain_size; ++b) {
      if (a != b) r.Add({a, b});
    }
  }
  r.Seal();
  return r;
}

Relation EqualityRelation(int domain_size) {
  Relation r(2);
  for (int a = 0; a < domain_size; ++a) r.Add({a, a});
  r.Seal();
  return r;
}

Relation BinaryRelationFromPairs(
    const std::vector<std::pair<int, int>>& pairs) {
  Relation r(2);
  for (auto [a, b] : pairs) r.Add({a, b});
  r.Seal();
  return r;
}

}  // namespace qc::csp
