#include "csp/arc_consistency.h"

#include <cstdlib>
#include <deque>
#include <set>

namespace qc::csp {

namespace {

/// Directed arc: value pruning of `from`'s domain against constraint `ci`,
/// where `from_pos` is the position of `from` in the constraint scope.
struct Arc {
  int constraint;
  int from_pos;  // 0 or 1.
};

}  // namespace

AcResult EnforceArcConsistency(const CspInstance& csp) {
  if (!csp.IsBinary()) std::abort();
  AcResult result;
  result.alive.assign(csp.num_vars,
                      std::vector<char>(csp.domain_size, 1));

  const int m = static_cast<int>(csp.constraints.size());
  std::deque<Arc> queue;
  std::set<std::pair<int, int>> queued;
  auto enqueue = [&](int ci, int pos) {
    if (queued.insert({ci, pos}).second) queue.push_back(Arc{ci, pos});
  };
  for (int ci = 0; ci < m; ++ci) {
    enqueue(ci, 0);
    enqueue(ci, 1);
  }

  while (!queue.empty()) {
    Arc arc = queue.front();
    queue.pop_front();
    queued.erase({arc.constraint, arc.from_pos});
    const auto& c = csp.constraints[arc.constraint];
    int from = c.scope[arc.from_pos];
    int other = c.scope[1 - arc.from_pos];
    ++result.revisions;

    bool revised = false;
    for (int d = 0; d < csp.domain_size; ++d) {
      if (!result.alive[from][d]) continue;
      bool supported = false;
      for (const auto& t : c.relation.tuples()) {
        if (t[arc.from_pos] == d && result.alive[other][t[1 - arc.from_pos]]) {
          supported = true;
          break;
        }
      }
      if (!supported) {
        result.alive[from][d] = 0;
        revised = true;
      }
    }
    if (!revised) continue;
    bool empty = true;
    for (int d = 0; d < csp.domain_size; ++d) {
      if (result.alive[from][d]) {
        empty = false;
        break;
      }
    }
    if (empty) {
      result.consistent = false;
      return result;
    }
    // Re-examine every arc pruning against `from`.
    for (int ci = 0; ci < m; ++ci) {
      if (ci == arc.constraint) continue;
      for (int pos = 0; pos < 2; ++pos) {
        if (csp.constraints[ci].scope[1 - pos] == from) enqueue(ci, pos);
      }
    }
  }
  return result;
}

CspInstance RestrictToAlive(const CspInstance& csp,
                            const std::vector<std::vector<char>>& alive) {
  CspInstance out;
  out.num_vars = csp.num_vars;
  out.domain_size = csp.domain_size;
  for (const auto& c : csp.constraints) {
    Relation r(c.relation.arity());
    for (const auto& t : c.relation.tuples()) {
      bool ok = true;
      for (std::size_t i = 0; i < c.scope.size(); ++i) {
        if (!alive[c.scope[i]][t[i]]) {
          ok = false;
          break;
        }
      }
      if (ok) r.Add(t);
    }
    out.AddConstraint(c.scope, std::move(r));
  }
  return out;
}

}  // namespace qc::csp
