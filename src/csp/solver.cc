#include "csp/solver.h"

#include <algorithm>

namespace qc::csp {

namespace {

/// Backtracking engine with value-pruning trail; shared by Solve, Count and
/// Enumerate (the visitor returns false to stop the search).
class Searcher {
 public:
  Searcher(const CspInstance& csp, const BacktrackingSolver::Options& options,
           SearchStats* stats)
      : csp_(csp), options_(options), stats_(stats) {
    const int n = csp.num_vars;
    alive_.assign(n, std::vector<char>(csp.domain_size, 1));
    alive_count_.assign(n, csp.domain_size);
    assignment_.assign(n, -1);
    constraints_of_.assign(n, {});
    for (int ci = 0; ci < static_cast<int>(csp.constraints.size()); ++ci) {
      for (int v : csp.constraints[ci].scope) constraints_of_[v].push_back(ci);
    }
    // Unary constraints prune domains before any assignment is made (the
    // per-assignment propagation below only looks at constraints touching
    // the variable just assigned, which would let clue-style unary
    // constraints go unnoticed until far too late).
    for (const auto& c : csp.constraints) {
      if (c.scope.size() != 1) continue;
      int v = c.scope[0];
      for (int d = 0; d < csp.domain_size; ++d) {
        if (alive_[v][d] && !c.relation.Contains({d})) {
          alive_[v][d] = 0;
          --alive_count_[v];
        }
      }
    }
  }

  /// Runs the search; returns true if the visitor stopped it early.
  bool Run(const std::function<bool(const std::vector<int>&)>& visitor) {
    aborted_ = false;
    return Search(0, visitor);
  }

  bool aborted() const { return aborted_; }
  const std::vector<int>& assignment() const { return assignment_; }

 private:
  int PickVariable() const {
    int best = -1;
    for (int v = 0; v < csp_.num_vars; ++v) {
      if (assignment_[v] >= 0) continue;
      if (best < 0) {
        best = v;
        if (!options_.mrv) return best;
      } else if (alive_count_[v] < alive_count_[best]) {
        best = v;
      }
    }
    return best;
  }

  /// Checks constraints fully assigned by the latest assignment, and
  /// forward-prunes constraints with exactly one unassigned variable.
  /// Pruned (var, value) pairs are appended to *trail.
  bool Propagate(int var, std::vector<std::pair<int, int>>* trail) {
    for (int ci : constraints_of_[var]) {
      const auto& c = csp_.constraints[ci];
      int unassigned_pos = -1, unassigned_count = 0;
      for (std::size_t i = 0; i < c.scope.size(); ++i) {
        if (assignment_[c.scope[i]] < 0) {
          ++unassigned_count;
          unassigned_pos = static_cast<int>(i);
        }
      }
      if (unassigned_count == 0) {
        ++stats_->consistency_checks;
        std::vector<int> tuple(c.scope.size());
        for (std::size_t i = 0; i < c.scope.size(); ++i) {
          tuple[i] = assignment_[c.scope[i]];
        }
        if (!c.relation.Contains(tuple)) return false;
      } else if (unassigned_count == 1 && options_.forward_checking) {
        int u = c.scope[unassigned_pos];
        std::vector<char> supported(csp_.domain_size, 0);
        for (const auto& tuple : c.relation.tuples()) {
          ++stats_->consistency_checks;
          bool consistent = true;
          for (std::size_t i = 0; i < c.scope.size(); ++i) {
            if (static_cast<int>(i) == unassigned_pos) continue;
            if (assignment_[c.scope[i]] != tuple[i]) {
              consistent = false;
              break;
            }
          }
          if (consistent) supported[tuple[unassigned_pos]] = 1;
        }
        for (int d = 0; d < csp_.domain_size; ++d) {
          if (alive_[u][d] && !supported[d]) {
            alive_[u][d] = 0;
            --alive_count_[u];
            trail->emplace_back(u, d);
          }
        }
        if (alive_count_[u] == 0) return false;
      }
    }
    return true;
  }

  bool Search(int depth,
              const std::function<bool(const std::vector<int>&)>& visitor) {
    if (options_.max_nodes != 0 && stats_->nodes >= options_.max_nodes) {
      aborted_ = true;
      return true;  // Unwind as if stopped.
    }
    if (options_.budget != nullptr && options_.budget->Poll()) {
      aborted_ = true;
      return true;
    }
    if (depth == csp_.num_vars) return !visitor(assignment_);
    int var = PickVariable();
    for (int d = 0; d < csp_.domain_size; ++d) {
      if (!alive_[var][d]) continue;
      ++stats_->nodes;
      assignment_[var] = d;
      std::vector<std::pair<int, int>> trail;
      bool ok = Propagate(var, &trail);
      if (ok && Search(depth + 1, visitor)) return true;
      if (!ok) ++stats_->backtracks;
      for (auto [u, val] : trail) {
        alive_[u][val] = 1;
        ++alive_count_[u];
      }
      assignment_[var] = -1;
      if (aborted_) return true;
    }
    return false;
  }

  const CspInstance& csp_;
  const BacktrackingSolver::Options& options_;
  SearchStats* stats_;
  std::vector<std::vector<char>> alive_;
  std::vector<int> alive_count_;
  std::vector<int> assignment_;
  std::vector<std::vector<int>> constraints_of_;
  bool aborted_ = false;
};

/// Constraints of arity 0/1 need a pre-pass: arity-1 constraints restrict
/// initial domains and are handled by Propagate only once their variable is
/// assigned, which is fine; nothing special needed.

}  // namespace

BacktrackingSolver::BacktrackingSolver() : options_() {}

CspSolution BacktrackingSolver::Solve(const CspInstance& csp) {
  CspSolution result;
  Searcher searcher(csp, options_, &result.stats);
  bool stopped = searcher.Run([&result](const std::vector<int>& a) {
    result.found = true;
    result.assignment = a;
    return false;  // Stop at the first solution.
  });
  aborted_ = searcher.aborted();
  (void)stopped;
  if (aborted_) {
    result.found = false;
    result.status = options_.budget != nullptr && options_.budget->Stopped()
                        ? options_.budget->status()
                        : util::RunStatus::kBudgetExhausted;
  }
  return result;
}

std::uint64_t BacktrackingSolver::CountSolutions(const CspInstance& csp,
                                                 SearchStats* stats) {
  SearchStats local;
  Searcher searcher(csp, options_, stats != nullptr ? stats : &local);
  std::uint64_t count = 0;
  searcher.Run([&count](const std::vector<int>&) {
    ++count;
    return true;
  });
  aborted_ = searcher.aborted();
  return count;
}

std::uint64_t BacktrackingSolver::EnumerateSolutions(
    const CspInstance& csp,
    const std::function<bool(const std::vector<int>&)>& callback) {
  SearchStats stats;
  Searcher searcher(csp, options_, &stats);
  std::uint64_t count = 0;
  searcher.Run([&](const std::vector<int>& a) {
    ++count;
    return callback(a);
  });
  aborted_ = searcher.aborted();
  return count;
}

CspSolution SolveBruteForce(const CspInstance& csp) {
  CspSolution result;
  std::vector<int> assignment(csp.num_vars, 0);
  if (csp.num_vars == 0) {
    result.found = csp.Check(assignment);
    return result;
  }
  if (csp.domain_size == 0) return result;
  while (true) {
    ++result.stats.nodes;
    if (csp.Check(assignment)) {
      result.found = true;
      result.assignment = assignment;
      return result;
    }
    int i = 0;
    while (i < csp.num_vars && ++assignment[i] == csp.domain_size) {
      assignment[i] = 0;
      ++i;
    }
    if (i == csp.num_vars) return result;
  }
}

std::uint64_t CountSolutionsBruteForce(const CspInstance& csp) {
  std::uint64_t count = 0;
  std::vector<int> assignment(csp.num_vars, 0);
  if (csp.num_vars == 0) return csp.Check(assignment) ? 1 : 0;
  if (csp.domain_size == 0) return 0;
  while (true) {
    if (csp.Check(assignment)) ++count;
    int i = 0;
    while (i < csp.num_vars && ++assignment[i] == csp.domain_size) {
      assignment[i] = 0;
      ++i;
    }
    if (i == csp.num_vars) return count;
  }
}

}  // namespace qc::csp
