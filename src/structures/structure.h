#ifndef QC_STRUCTURES_STRUCTURE_H_
#define QC_STRUCTURES_STRUCTURE_H_

#include <string>
#include <vector>

#include "csp/csp.h"
#include "graph/graph.h"

namespace qc::structures {

/// A relation symbol with its arity.
struct RelSymbol {
  std::string name;
  int arity;
};

/// A finite relational tau-structure (Section 2.4): a universe
/// {0..size-1} and, for each symbol of the vocabulary, a set of tuples.
class Structure {
 public:
  Structure(std::vector<RelSymbol> vocabulary, int universe_size);

  int universe_size() const { return universe_size_; }
  const std::vector<RelSymbol>& vocabulary() const { return vocabulary_; }
  const std::vector<std::vector<std::vector<int>>>& relations() const {
    return relations_;
  }

  /// Adds a tuple to relation `symbol` (index into the vocabulary).
  void AddTuple(int symbol, std::vector<int> tuple);

  bool HasTuple(int symbol, const std::vector<int>& tuple) const;

  /// Induced substructure on `universe_subset`; element i of the result is
  /// universe_subset[i]. Tuples touching removed elements are dropped.
  Structure InducedSubstructure(const std::vector<int>& universe_subset) const;

  /// Gaifman graph: elements adjacent iff they co-occur in a tuple.
  graph::Graph GaifmanGraph() const;

  /// True if h (size = universe) is a homomorphism from *this to `target`.
  bool IsHomomorphism(const Structure& target,
                      const std::vector<int>& h) const;

  /// Directed graph as a single-binary-symbol structure ("E").
  static Structure FromDigraphEdges(int num_vertices,
                                    const std::vector<std::pair<int, int>>& edges);

  /// Undirected graph: each edge yields both orientations.
  static Structure FromGraph(const graph::Graph& g);

 private:
  std::vector<RelSymbol> vocabulary_;
  int universe_size_;
  std::vector<std::vector<std::vector<int>>> relations_;  ///< Per symbol.
};

/// The canonical CSP of the homomorphism problem (Section 2.4): variables =
/// universe of A, domain = universe of B, one constraint per tuple of A.
/// Both structures must share the vocabulary (checked by arity).
csp::CspInstance HomomorphismCsp(const Structure& a, const Structure& b);

/// Finds a homomorphism from A to B, or nullopt.
std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b);

/// Number of homomorphisms from A to B.
std::uint64_t CountHomomorphisms(const Structure& a, const Structure& b);

/// True if homomorphisms exist in both directions.
bool AreHomEquivalent(const Structure& a, const Structure& b);

/// Counts homomorphisms with Freuder's tree-decomposition dynamic program
/// on A's Gaifman graph (Theorem 4.2 applied to HOM(A, _)); exact, and
/// exponentially faster than backtracking when A has small treewidth.
std::uint64_t CountHomomorphismsTreewidth(const Structure& a,
                                          const Structure& b);

/// Computes the core of A (Section 5): the minimal induced substructure
/// that A retracts to, unique up to isomorphism. Returned with its elements
/// named by their positions; writes the surviving original elements to
/// *kept_elements if non-null.
Structure ComputeCore(const Structure& a,
                      std::vector<int>* kept_elements = nullptr);

/// Isomorphism test by backtracking over bijections (small structures):
/// used e.g. to check that cores are unique up to isomorphism.
bool AreIsomorphic(const Structure& a, const Structure& b);

/// Disjoint union: B's elements are shifted by A's universe size.
/// Vocabularies must match.
Structure DisjointUnion(const Structure& a, const Structure& b);

}  // namespace qc::structures

#endif  // QC_STRUCTURES_STRUCTURE_H_
