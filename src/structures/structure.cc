#include "structures/structure.h"

#include <algorithm>
#include <cstdlib>

#include "csp/solver.h"
#include "csp/treedp.h"

namespace qc::structures {

Structure::Structure(std::vector<RelSymbol> vocabulary, int universe_size)
    : vocabulary_(std::move(vocabulary)),
      universe_size_(universe_size),
      relations_(vocabulary_.size()) {}

void Structure::AddTuple(int symbol, std::vector<int> tuple) {
  if (symbol < 0 || symbol >= static_cast<int>(vocabulary_.size()) ||
      static_cast<int>(tuple.size()) != vocabulary_[symbol].arity) {
    std::abort();
  }
  for (int e : tuple) {
    if (e < 0 || e >= universe_size_) std::abort();
  }
  relations_[symbol].push_back(std::move(tuple));
}

bool Structure::HasTuple(int symbol, const std::vector<int>& tuple) const {
  const auto& rel = relations_[symbol];
  return std::find(rel.begin(), rel.end(), tuple) != rel.end();
}

Structure Structure::InducedSubstructure(
    const std::vector<int>& universe_subset) const {
  Structure out(vocabulary_, static_cast<int>(universe_subset.size()));
  std::vector<int> new_id(universe_size_, -1);
  for (int i = 0; i < static_cast<int>(universe_subset.size()); ++i) {
    new_id[universe_subset[i]] = i;
  }
  for (int s = 0; s < static_cast<int>(vocabulary_.size()); ++s) {
    for (const auto& tuple : relations_[s]) {
      std::vector<int> renamed;
      renamed.reserve(tuple.size());
      bool keep = true;
      for (int e : tuple) {
        if (new_id[e] < 0) {
          keep = false;
          break;
        }
        renamed.push_back(new_id[e]);
      }
      if (keep) out.AddTuple(s, std::move(renamed));
    }
  }
  return out;
}

graph::Graph Structure::GaifmanGraph() const {
  graph::Graph g(universe_size_);
  for (const auto& rel : relations_) {
    for (const auto& tuple : rel) {
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        for (std::size_t j = i + 1; j < tuple.size(); ++j) {
          if (tuple[i] != tuple[j]) g.AddEdge(tuple[i], tuple[j]);
        }
      }
    }
  }
  return g;
}

bool Structure::IsHomomorphism(const Structure& target,
                               const std::vector<int>& h) const {
  if (vocabulary_.size() != target.vocabulary_.size()) return false;
  for (int s = 0; s < static_cast<int>(vocabulary_.size()); ++s) {
    for (const auto& tuple : relations_[s]) {
      std::vector<int> image;
      image.reserve(tuple.size());
      for (int e : tuple) image.push_back(h[e]);
      if (!target.HasTuple(s, image)) return false;
    }
  }
  return true;
}

Structure Structure::FromDigraphEdges(
    int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  Structure s({RelSymbol{"E", 2}}, num_vertices);
  for (auto [u, v] : edges) s.AddTuple(0, {u, v});
  return s;
}

Structure Structure::FromGraph(const graph::Graph& g) {
  Structure s({RelSymbol{"E", 2}}, g.num_vertices());
  for (auto [u, v] : g.Edges()) {
    s.AddTuple(0, {u, v});
    s.AddTuple(0, {v, u});
  }
  return s;
}

csp::CspInstance HomomorphismCsp(const Structure& a, const Structure& b) {
  if (a.vocabulary().size() != b.vocabulary().size()) std::abort();
  csp::CspInstance csp;
  csp.num_vars = a.universe_size();
  csp.domain_size = b.universe_size();
  for (int s = 0; s < static_cast<int>(a.vocabulary().size()); ++s) {
    if (a.vocabulary()[s].arity != b.vocabulary()[s].arity) std::abort();
    csp::Relation rel(a.vocabulary()[s].arity);
    for (const auto& tuple : b.relations()[s]) rel.Add(tuple);
    rel.Seal();
    for (const auto& tuple : a.relations()[s]) {
      csp.AddConstraint(tuple, rel);
    }
  }
  return csp;
}

std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b) {
  csp::CspInstance csp = HomomorphismCsp(a, b);
  csp::CspSolution sol = csp::BacktrackingSolver().Solve(csp);
  if (!sol.found) return std::nullopt;
  return sol.assignment;
}

std::uint64_t CountHomomorphisms(const Structure& a, const Structure& b) {
  csp::CspInstance csp = HomomorphismCsp(a, b);
  csp::BacktrackingSolver solver;
  return solver.CountSolutions(csp, nullptr);
}

bool AreHomEquivalent(const Structure& a, const Structure& b) {
  return FindHomomorphism(a, b).has_value() &&
         FindHomomorphism(b, a).has_value();
}

std::uint64_t CountHomomorphismsTreewidth(const Structure& a,
                                          const Structure& b) {
  csp::CspInstance csp = HomomorphismCsp(a, b);
  return csp::SolveTreewidthDp(csp).solution_count;
}

namespace {

bool IsoSearch(const Structure& a, const Structure& b, std::size_t pos,
               std::vector<int>* f, std::vector<bool>* used) {
  const int n = a.universe_size();
  if (static_cast<int>(pos) == n) {
    // f is a bijection; check it is an isomorphism: hom in both directions
    // under f and f^{-1}. Equivalent: tuple sets map exactly.
    for (std::size_t s = 0; s < a.vocabulary().size(); ++s) {
      if (a.relations()[s].size() != b.relations()[s].size()) return false;
      for (const auto& tuple : a.relations()[s]) {
        std::vector<int> image;
        image.reserve(tuple.size());
        for (int e : tuple) image.push_back((*f)[e]);
        if (!b.HasTuple(static_cast<int>(s), image)) return false;
      }
    }
    return true;
  }
  for (int img = 0; img < n; ++img) {
    if ((*used)[img]) continue;
    (*f)[pos] = img;
    (*used)[img] = true;
    if (IsoSearch(a, b, pos + 1, f, used)) return true;
    (*used)[img] = false;
  }
  return false;
}

}  // namespace

bool AreIsomorphic(const Structure& a, const Structure& b) {
  if (a.universe_size() != b.universe_size() ||
      a.vocabulary().size() != b.vocabulary().size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.vocabulary().size(); ++s) {
    if (a.vocabulary()[s].arity != b.vocabulary()[s].arity ||
        a.relations()[s].size() != b.relations()[s].size()) {
      return false;
    }
  }
  std::vector<int> f(a.universe_size(), -1);
  std::vector<bool> used(a.universe_size(), false);
  return IsoSearch(a, b, 0, &f, &used);
}

Structure DisjointUnion(const Structure& a, const Structure& b) {
  if (a.vocabulary().size() != b.vocabulary().size()) std::abort();
  Structure out(a.vocabulary(), a.universe_size() + b.universe_size());
  for (std::size_t s = 0; s < a.vocabulary().size(); ++s) {
    for (const auto& tuple : a.relations()[s]) {
      out.AddTuple(static_cast<int>(s), tuple);
    }
    for (const auto& tuple : b.relations()[s]) {
      std::vector<int> shifted;
      shifted.reserve(tuple.size());
      for (int e : tuple) shifted.push_back(e + a.universe_size());
      out.AddTuple(static_cast<int>(s), std::move(shifted));
    }
  }
  return out;
}

Structure ComputeCore(const Structure& a, std::vector<int>* kept_elements) {
  std::vector<int> kept(a.universe_size());
  for (int i = 0; i < a.universe_size(); ++i) kept[i] = i;
  Structure current = a;
  bool shrunk = true;
  while (shrunk && current.universe_size() > 1) {
    shrunk = false;
    for (int drop = 0; drop < current.universe_size(); ++drop) {
      std::vector<int> rest;
      rest.reserve(current.universe_size() - 1);
      for (int i = 0; i < current.universe_size(); ++i) {
        if (i != drop) rest.push_back(i);
      }
      Structure candidate = current.InducedSubstructure(rest);
      if (FindHomomorphism(current, candidate).has_value()) {
        // current retracts into candidate: recurse on the smaller structure.
        std::vector<int> new_kept;
        new_kept.reserve(rest.size());
        for (int i : rest) new_kept.push_back(kept[i]);
        kept = std::move(new_kept);
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  if (kept_elements != nullptr) *kept_elements = kept;
  return current;
}

}  // namespace qc::structures
