#ifndef QC_API_SESSION_OPTIONS_H_
#define QC_API_SESSION_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/context.h"
#include "db/index_cache.h"
#include "util/budget.h"

namespace qc::api {

/// The one knob surface every front end shares: qc_serverd's session
/// defaults, query_cli's and fpt_toolbox's command lines, and the wire
/// protocol's per-request `option` fields are all this struct, parsed by
/// the single option table in session_options.cc. A tool never hand-rolls
/// `--deadline-ms` again; it loops ParseSessionFlag over argv and keeps its
/// genuinely private flags for itself.
struct SessionOptions {
  /// Worker threads for parallel engines (0 = QC_THREADS env, default 1).
  int threads = 0;
  /// Wall-clock cap per run in milliseconds (0 = none; exit code 4).
  std::uint64_t deadline_ms = 0;
  /// Output-row cap per run (0 = unlimited; exit code 5 on trip).
  std::uint64_t max_rows = 0;
  /// Shared trie-index cache capacity in MiB (0 = no cache).
  std::uint64_t index_cache_mb = 0;
  /// Where to write the machine-readable RunReport ("" = don't).
  std::string report_json;
  /// Dataset-input error handling: false = abort (reject the whole input,
  /// apply nothing), true = continue (apply valid rows, skip and report
  /// each bad one). See api::LoadDataset.
  bool continue_on_input_error = false;
  /// Degree-split hybrid MM/WCOJ planner routing (DESIGN.md §15): kAuto
  /// lets the autosolver pick, kOn forces the hybrid on every recognized
  /// pattern, kOff disables it.
  HybridMode hybrid = HybridMode::kAuto;
  /// Degree threshold Δ override for the hybrid split (0 = auto √N).
  std::int64_t hybrid_delta = 0;

  /// Copies the execution knobs onto a context (threads; budget limits are
  /// resolved through MakeBudget so callers can share one budget).
  void ApplyTo(ExecutionContext* ctx) const;

  /// A fresh budget armed with deadline_ms/max_rows (never null).
  std::shared_ptr<util::Budget> MakeBudget() const;

  /// An index cache of index_cache_mb MiB, or null when disabled.
  std::unique_ptr<db::IndexCache> MakeIndexCache() const;
};

/// One row of the shared option table; exposed so help text, CLI parsing
/// and wire-option validation all come from the same place.
struct SessionOptionSpec {
  const char* flag;        ///< CLI spelling, e.g. "--deadline-ms".
  const char* key;         ///< Wire/requests spelling, e.g. "deadline_ms".
  const char* value_name;  ///< Placeholder for usage text, e.g. "N".
  const char* help;        ///< One-line description.
  /// Parses `value` into `opts`; false (error filled) on a bad value.
  bool (*set)(SessionOptions& opts, std::string_view value,
              std::string* error);
};

const std::vector<SessionOptionSpec>& SessionOptionTable();

/// Tries to consume argv[i] (+ its value) as a session flag. Returns the
/// number of argv slots consumed (2 for every current flag), 0 when argv[i]
/// is not a session flag, or -1 on a malformed value (error filled, e.g.
/// "--deadline-ms: bad value 'x'").
int ParseSessionFlag(int argc, char* const* argv, int i, SessionOptions* opts,
                     std::string* error);

/// Sets one option by wire key ("deadline_ms", "max_rows", ...). False with
/// `error` filled for unknown keys or bad values.
bool SetSessionOption(SessionOptions* opts, std::string_view key,
                      std::string_view value, std::string* error);

/// " [--threads N] [--deadline-ms N] ..." — for usage lines.
std::string SessionFlagsUsage();

}  // namespace qc::api

#endif  // QC_API_SESSION_OPTIONS_H_
