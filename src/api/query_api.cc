#include "api/query_api.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <new>
#include <set>

#include "core/analyzer.h"
#include "core/autosolver.h"
#include "db/parser.h"
#include "kernels/dispatch.h"
#include "util/arena.h"
#include "util/fault.h"
#include "util/trace.h"

namespace qc::api {

std::string InputDiagnostic::ToString() const {
  return "line " + std::to_string(line) + ": " + message;
}

namespace {

/// One staged tuple with the input line it came from.
struct StagedRow {
  int line = 0;
  db::Tuple tuple;
};

/// One "relation X:" block occurrence, rows already parsed.
struct StagedBlock {
  std::string relation;
  int header_line = 0;
  std::vector<StagedRow> rows;
};

bool IsBlankOrComment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

DatasetStaging StageDataset(const std::string& text, const db::Database& db,
                            bool continue_on_error) {
  DatasetStaging staging;
  DatasetLoad& out = staging.load;
  std::vector<StagedBlock> blocks;
  StagedBlock* current = nullptr;

  // Pass 1: split into the query line and relation blocks, parsing each
  // tuple line individually so every malformed row gets its own
  // line-numbered diagnostic (not just the first).
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos == text.size()) break;
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (line.rfind("query:", 0) == 0) {
      out.query_text = line.substr(6);
      continue;
    }
    if (line.rfind("relation ", 0) == 0) {
      std::size_t colon = line.find(':');
      if (colon == std::string::npos) {
        out.diagnostics.push_back(
            {line_no, "relation header is missing ':'"});
        current = nullptr;
        continue;
      }
      std::string name = line.substr(9, colon - 9);
      while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
        name.pop_back();
      }
      if (name.empty()) {
        out.diagnostics.push_back({line_no, "relation header has no name"});
        current = nullptr;
        continue;
      }
      blocks.push_back(StagedBlock{std::move(name), line_no, {}});
      current = &blocks.back();
      continue;
    }
    if (IsBlankOrComment(line)) continue;
    if (current == nullptr) {
      out.diagnostics.push_back(
          {line_no, "tuple outside any 'relation X:' block"});
      continue;
    }
    auto parsed = db::ParseTuples(line);
    if (!parsed) {
      out.diagnostics.push_back(
          {line_no, "relation " + current->relation + ": column " +
                        std::to_string(parsed.error.column) + ": " +
                        parsed.error.message});
      continue;
    }
    for (auto& t : *parsed) {
      current->rows.push_back(StagedRow{line_no, std::move(t)});
    }
  }

  // Pass 2: resolve arities and validate every row before anything is
  // applied. Existing relations fix the arity; a new name takes the arity
  // of its first valid row.
  std::map<std::string, int> arity;
  for (StagedBlock& block : blocks) {
    auto it = arity.find(block.relation);
    int expected = -1;
    if (it != arity.end()) {
      expected = it->second;
    } else if (db.HasRelation(block.relation)) {
      expected = db.Arity(block.relation);
      arity[block.relation] = expected;
    }
    std::vector<StagedRow> kept;
    kept.reserve(block.rows.size());
    for (StagedRow& row : block.rows) {
      if (expected < 0) {
        expected = static_cast<int>(row.tuple.size());
        arity[block.relation] = expected;
      }
      if (static_cast<int>(row.tuple.size()) != expected) {
        out.diagnostics.push_back(
            {row.line, "relation " + block.relation + ": tuple has arity " +
                           std::to_string(row.tuple.size()) + ", expected " +
                           std::to_string(expected)});
        ++out.tuples_skipped;
        continue;
      }
      kept.push_back(std::move(row));
    }
    block.rows = std::move(kept);
    if (expected < 0) arity[block.relation] = 1;  // Empty new relation.
  }

  // Abort semantics: any diagnostic rejects the whole input — the database
  // is untouched, mirroring SetRelation's all-or-nothing validation.
  if (!out.diagnostics.empty() && !continue_on_error) {
    out.ok = false;
    out.applied = false;
    out.tuples_skipped = 0;
    return staging;
  }

  // Resolve blocks into apply-ready batches, block order preserved. The
  // FIRST block of a name the database does not know creates the relation;
  // every later block of that name (and every block of an existing name)
  // appends — the same decision pass 3 used to make against the live
  // database mid-apply.
  std::set<std::string> created;
  staging.blocks.reserve(blocks.size());
  for (StagedBlock& block : blocks) {
    DatasetStaging::Block resolved;
    resolved.relation = block.relation;
    resolved.header_line = block.header_line;
    resolved.arity = arity.at(block.relation);
    resolved.create =
        !db.HasRelation(block.relation) && created.insert(block.relation).second;
    resolved.tuples.reserve(block.rows.size());
    for (StagedRow& row : block.rows) {
      resolved.tuples.push_back(std::move(row.tuple));
    }
    staging.blocks.push_back(std::move(resolved));
  }
  out.ok = true;
  return staging;
}

db::MutationResult ApplyDataset(DatasetStaging* staging, db::Database* db) {
  DatasetLoad& out = staging->load;
  if (!out.ok) {
    return db::MutationResult::Fail("dataset staging was rejected");
  }
  for (DatasetStaging::Block& block : staging->blocks) {
    db::MutationResult r;
    if (block.create) {
      const std::size_t rows = block.tuples.size();
      r = db->SetRelation(block.relation, block.arity,
                          std::move(block.tuples));
      if (r) out.tuples_applied += rows;
    } else {
      // Unreachable failures after staging validated arities — but the
      // database may have changed if the caller broke the same-state
      // contract, so surface instead of ignoring.
      for (db::Tuple& tuple : block.tuples) {
        r = db->AddTuple(block.relation, std::move(tuple));
        if (!r) break;
        ++out.tuples_applied;
      }
    }
    if (!r) {
      out.diagnostics.push_back({block.header_line, r.message});
      out.ok = false;
      return r;
    }
  }
  out.applied = true;
  return db::MutationResult::Ok();
}

DatasetLoad LoadDataset(const std::string& text, db::Database* db,
                        bool continue_on_error) {
  DatasetStaging staging = StageDataset(text, *db, continue_on_error);
  if (staging.load.ok) ApplyDataset(&staging, db);
  return std::move(staging.load);
}

DatasetFileLoad LoadDatasetFile(const std::string& path, db::Database* db,
                                bool continue_on_error) {
  DatasetFileLoad out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.io_error = path + ": " + std::strerror(errno);
    return out;
  }
  std::string text;
  char buf[1 << 16];
  while (true) {
    std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    text.append(buf, n);
    if (n < sizeof(buf)) {
      if (std::ferror(f)) {
        out.io_error = path + ": read error: " + std::strerror(errno);
        std::fclose(f);
        return out;
      }
      break;
    }
  }
  std::fclose(f);
  out.io_ok = true;
  out.load = LoadDataset(text, db, continue_on_error);
  return out;
}

int QueryResponse::ExitCode() const {
  if (!input_ok) return 1;
  if (internal_error) return 7;
  return util::ExitCode(status);
}

QueryResponse ExecuteQuery(const QueryRequest& req, const db::Database& db,
                           db::IndexCache* cache) {
  QueryResponse resp;
  auto query = db::ParseJoinQuery(req.query_text);
  if (!query) {
    resp.error = "query parse error: " + query.error.ToString();
    return resp;
  }
  for (const auto& atom : query->atoms) {
    if (!db.HasRelation(atom.relation)) {
      resp.error = "missing relation " + atom.relation;
      return resp;
    }
  }
  resp.input_ok = true;

  util::Counters counters;
  ExecutionContext ctx;
  req.options.ApplyTo(&ctx);
  ctx.counters = &counters;
  ctx.index_cache = cache;
  // Per-request scratch arena: the serial engines route their join-time
  // buffers (sort scratch, trie-build ranges, semijoin keys) through it and
  // the whole footprint is released here when the request finishes.
  util::Arena arena;
  ctx.arena = &arena;
  // One budget across analysis and evaluation: the deadline is end-to-end
  // and the row meter survives both phases.
  auto budget = req.options.MakeBudget();
  ctx.budget = budget;
  if (req.collect_trace) util::Trace::Enable();
  auto start = std::chrono::steady_clock::now();

  // Allocation failure (a genuinely exhausted heap, or the arena.alloc
  // fault point) must come back as a structured internal error, not a
  // crash: the engines assume allocation succeeds, so the containment
  // boundary is here, where a per-request failure cannot take down the
  // process (qc_serverd turns it into a retryable code-7 error frame).
  try {
    if (req.want_analysis) {
      core::Analysis analysis = core::AnalyzeQuery(*query, ctx);
      resp.analysis_text = analysis.ToString();
      if (analysis.status != util::RunStatus::kCompleted) {
        resp.analysis_text +=
            "\n(analysis degraded to heuristic measures: " +
            std::string(util::ToString(analysis.status)) + ")";
      }
    }

    core::AutoQueryResult result = core::EvaluateQueryAuto(*query, db, ctx);
    resp.status = result.status;
    resp.method = core::ToString(result.method);
    resp.result = std::move(result.result);
    FillPlannerSection(&resp.report, result.plan);
  } catch (const std::bad_alloc&) {
    resp.internal_error = true;
    resp.error = "allocation failure during query evaluation";
    resp.result = db::JoinResult{};
  }

  resp.report.status = resp.status;
  resp.report.threads = ctx.ResolvedThreads();
  resp.report.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  resp.report.FillBudget(*budget, req.options.deadline_ms > 0);
  FillCacheSection(&resp.report, cache);
  if (cache != nullptr) cache->ExportCounters(&counters);
  // With fault injection active, the report shows which failure paths this
  // request exercised ("fault.<point>.evals"/".fires").
  if (util::FaultsEnabled()) {
    util::FaultRegistry::Global().ExportCounters(&counters);
  }
  resp.report.stats.arena_high_water_bytes = arena.high_water_bytes();
  resp.report.counters = std::move(counters);
  resp.report.counters.Set("threads", ctx.ResolvedThreads());
  resp.report.counters.Set(
      "simd.level", static_cast<std::uint64_t>(kernels::ActiveSimdLevel()));
  resp.report.counters.Set("arena.high_water_bytes",
                           arena.high_water_bytes());
  if (req.collect_trace) {
    resp.report.trace = util::Trace::Collect();
    util::Trace::Disable();
  }
  resp.report.server.request_id = req.id;
  return resp;
}

void FillCacheSection(util::RunReport* report, const db::IndexCache* cache) {
  if (cache == nullptr) return;
  db::IndexCacheStats stats = cache->stats();
  report->cache.enabled = true;
  report->cache.hits = stats.hits;
  report->cache.misses = stats.misses;
  report->cache.evictions = stats.evictions;
  report->cache.bytes = stats.bytes;
  report->cache.capacity_bytes = stats.capacity_bytes;
  report->cache.entries = stats.entries;
}

void FillPlannerSection(util::RunReport* report, const db::HybridPlan& plan) {
  if (plan.pattern == db::HybridPattern::kNone) return;
  report->planner.present = true;
  report->planner.pattern = db::ToString(plan.pattern);
  report->planner.threshold = plan.threshold;
  report->planner.threshold_overridden = plan.threshold_overridden;
  report->planner.delegated = plan.delegated;
  report->planner.heavy_values = plan.heavy_values;
  report->planner.heavy_tuples = plan.heavy_tuples;
  report->planner.light_tuples = plan.light_tuples;
  report->planner.heavy_rows = plan.heavy_rows;
  report->planner.light_rows = plan.light_rows;
}

void FillIvmSection(util::RunReport* report, const db::IvmStats& stats) {
  report->ivm.present = true;
  report->ivm.views = stats.views;
  report->ivm.updates = stats.updates;
  report->ivm.dirty_subtree_sweeps = stats.dirty_subtree_sweeps;
  report->ivm.rows_delta_applied = stats.rows_delta_applied;
  report->ivm.full_recomputes = stats.full_recomputes;
}

int FinishReport(const SessionOptions& opts, const util::RunReport& report,
                 util::RunStatus status) {
  if (!opts.report_json.empty() && !report.WriteJsonFile(opts.report_json)) {
    return 1;
  }
  if (!util::IsKnown(status)) {
    std::fprintf(stderr,
                 "internal error: unknown run status %d (please report)\n",
                 static_cast<int>(status));
  }
  return util::ExitCode(status);
}

}  // namespace qc::api
