#include "api/session_options.h"

#include <cstring>

#include "util/parse.h"

namespace qc::api {

namespace {

bool ParseU64(std::string_view value, std::uint64_t* out) {
  if (value.empty() || value.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    std::uint64_t next = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (next < v) return false;  // Overflow.
    v = next;
  }
  *out = v;
  return true;
}

bool BadValue(const char* flag, std::string_view value, std::string* error) {
  *error = std::string(flag) + ": bad value '" +
           util::ClipForError(value) + "'";
  return false;
}

bool SetThreads(SessionOptions& o, std::string_view v, std::string* error) {
  std::uint64_t n;
  if (!ParseU64(v, &n) || n > 4096) return BadValue("--threads", v, error);
  o.threads = static_cast<int>(n);
  return true;
}

bool SetDeadlineMs(SessionOptions& o, std::string_view v, std::string* error) {
  if (!ParseU64(v, &o.deadline_ms)) return BadValue("--deadline-ms", v, error);
  return true;
}

bool SetMaxRows(SessionOptions& o, std::string_view v, std::string* error) {
  if (!ParseU64(v, &o.max_rows)) return BadValue("--max-rows", v, error);
  return true;
}

bool SetIndexCacheMb(SessionOptions& o, std::string_view v,
                     std::string* error) {
  // Cap at 1 TiB so `<< 20` can never overflow size_t on 64-bit.
  if (!ParseU64(v, &o.index_cache_mb) || o.index_cache_mb > (1u << 20)) {
    return BadValue("--index-cache-mb", v, error);
  }
  return true;
}

bool SetReportJson(SessionOptions& o, std::string_view v, std::string* error) {
  if (v.empty()) return BadValue("--report-json", v, error);
  o.report_json = std::string(v);
  return true;
}

bool SetOnInputError(SessionOptions& o, std::string_view v,
                     std::string* error) {
  if (v == "abort") {
    o.continue_on_input_error = false;
  } else if (v == "continue") {
    o.continue_on_input_error = true;
  } else {
    return BadValue("--on-input-error", v, error);
  }
  return true;
}

bool SetHybrid(SessionOptions& o, std::string_view v, std::string* error) {
  if (v == "auto") {
    o.hybrid = HybridMode::kAuto;
  } else if (v == "on") {
    o.hybrid = HybridMode::kOn;
  } else if (v == "off") {
    o.hybrid = HybridMode::kOff;
  } else {
    return BadValue("--hybrid", v, error);
  }
  return true;
}

bool SetHybridDelta(SessionOptions& o, std::string_view v,
                    std::string* error) {
  std::uint64_t n;
  if (!ParseU64(v, &n) || n > (1ull << 62)) {
    return BadValue("--hybrid-delta", v, error);
  }
  o.hybrid_delta = static_cast<std::int64_t>(n);
  return true;
}

}  // namespace

const std::vector<SessionOptionSpec>& SessionOptionTable() {
  static const std::vector<SessionOptionSpec> kTable = {
      {"--threads", "threads", "N",
       "worker threads for parallel engines (0 = QC_THREADS)", SetThreads},
      {"--deadline-ms", "deadline_ms", "N",
       "wall-clock cap in milliseconds (exit 4 on trip)", SetDeadlineMs},
      {"--max-rows", "max_rows", "N",
       "output-row cap (exit 5 on trip)", SetMaxRows},
      {"--index-cache-mb", "index_cache_mb", "N",
       "shared trie-index cache capacity in MiB (0 = off)", SetIndexCacheMb},
      {"--report-json", "report_json", "FILE",
       "write a machine-readable RunReport", SetReportJson},
      {"--on-input-error", "on_input_error", "abort|continue",
       "dataset error handling: reject everything or skip bad rows",
       SetOnInputError},
      {"--hybrid", "hybrid", "auto|on|off",
       "degree-split MM/WCOJ hybrid planner routing", SetHybrid},
      {"--hybrid-delta", "hybrid_delta", "N",
       "hybrid degree threshold override (0 = auto sqrt(N))", SetHybridDelta},
  };
  return kTable;
}

int ParseSessionFlag(int argc, char* const* argv, int i, SessionOptions* opts,
                     std::string* error) {
  for (const SessionOptionSpec& spec : SessionOptionTable()) {
    if (std::strcmp(argv[i], spec.flag) != 0) continue;
    if (i + 1 >= argc) {
      *error = std::string(spec.flag) + ": missing value";
      return -1;
    }
    if (!spec.set(*opts, argv[i + 1], error)) return -1;
    return 2;
  }
  return 0;
}

bool SetSessionOption(SessionOptions* opts, std::string_view key,
                      std::string_view value, std::string* error) {
  for (const SessionOptionSpec& spec : SessionOptionTable()) {
    if (key == spec.key) return spec.set(*opts, value, error);
  }
  *error = "unknown option '" + util::ClipForError(key) + "'";
  return false;
}

std::string SessionFlagsUsage() {
  std::string usage;
  for (const SessionOptionSpec& spec : SessionOptionTable()) {
    usage += std::string(" [") + spec.flag + " " + spec.value_name + "]";
  }
  return usage;
}

void SessionOptions::ApplyTo(ExecutionContext* ctx) const {
  ctx->threads = threads;
  ctx->hybrid_mode = hybrid;
  ctx->hybrid_delta = hybrid_delta;
}

std::shared_ptr<util::Budget> SessionOptions::MakeBudget() const {
  auto budget = std::make_shared<util::Budget>();
  if (deadline_ms > 0) {
    budget->ArmDeadlineAfter(static_cast<double>(deadline_ms) / 1000.0);
  }
  if (max_rows > 0) budget->ArmRowLimit(max_rows);
  return budget;
}

std::unique_ptr<db::IndexCache> SessionOptions::MakeIndexCache() const {
  if (index_cache_mb == 0) return nullptr;
  return std::make_unique<db::IndexCache>(
      static_cast<std::size_t>(index_cache_mb) << 20);
}

}  // namespace qc::api
