#ifndef QC_API_WIRE_H_
#define QC_API_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qc::api {

/// One frame of the qcp/1 wire protocol shared by qc_serverd and its
/// clients: a text header plus a length-prefixed binary-safe body.
///
///   qcp <kind> <body-bytes>\n
///   <key> <value>\n                (0+ metadata lines; the value is the
///   .\n                             rest of the line, spaces allowed)
///   <body-bytes raw bytes>
///
/// Request kinds: "query" (body = query text), "mutate" (body = dataset
/// text, see api::LoadDataset), "ping", "stats", "shutdown".
/// Reply kinds: "hdr" (result schema/status), "batch" (one batch of result
/// rows, text lines), "report" (body = RunReport JSON), "end" (terminal,
/// field `code` = process-style exit code), "error" (terminal, structured
/// diagnostic: `code`, `reason`, `message`, admission fields), "pong",
/// "stats-reply" (body = server stats JSON).
///
/// The header is intentionally line-based (greppable, telnet-debuggable);
/// the length-prefixed body keeps arbitrary dataset bytes unambiguous.
struct Frame {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;

  /// Last value for `key`, or nullptr.
  const std::string* Find(std::string_view key) const;
  /// Find() parsed as u64; `fallback` on absence or garbage.
  std::uint64_t FindUint(std::string_view key, std::uint64_t fallback) const;

  Frame& Add(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Serializes a frame. Keys must be single tokens (no spaces/newlines);
/// values must not contain newlines — both hold for every key the protocol
/// defines; violators are sanitized to '_' rather than corrupting framing.
std::string EncodeFrame(const Frame& frame);

/// Incremental decoder fed by arbitrary byte chunks (socket reads).
/// Hardened against untrusted peers: header lines, field counts and body
/// sizes are capped, and any malformed header poisons the parser (every
/// later Next() returns kError) since resynchronization inside a
/// length-prefixed stream is impossible.
class FrameParser {
 public:
  enum class Result {
    kFrame,     ///< `out` holds the next complete frame.
    kNeedMore,  ///< Feed more bytes.
    kError,     ///< Protocol violation; `error` explains. Terminal.
  };

  /// Caps (bytes): a header line, a whole frame body, fields per frame.
  static constexpr std::size_t kMaxHeaderLine = 4096;
  static constexpr std::size_t kMaxBodyBytes = std::size_t{256} << 20;
  static constexpr std::size_t kMaxFields = 256;

  void Feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void Feed(std::string_view data) { buf_.append(data); }

  Result Next(Frame* out, std::string* error);

 private:
  Result Fail(std::string* error, std::string message);

  std::string buf_;
  bool poisoned_ = false;
};

}  // namespace qc::api

#endif  // QC_API_WIRE_H_
