#include "api/wire.h"

#include "util/parse.h"

namespace qc::api {

namespace {

/// Replaces framing-hostile bytes so a sloppy caller cannot desynchronize
/// the stream (keys/values are protocol-chosen tokens; this is a backstop,
/// not an escape mechanism).
std::string Sanitize(std::string_view s, bool allow_space) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n' || c == '\r' || (!allow_space && c == ' ')) {
      out.push_back('_');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool ParseU64(std::string_view value, std::uint64_t* out) {
  if (value.empty() || value.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    std::uint64_t next = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (next < v) return false;
    v = next;
  }
  *out = v;
  return true;
}

}  // namespace

const std::string* Frame::Find(std::string_view key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) found = &v;
  }
  return found;
}

std::uint64_t Frame::FindUint(std::string_view key,
                              std::uint64_t fallback) const {
  const std::string* v = Find(key);
  std::uint64_t out = 0;
  if (v == nullptr || !ParseU64(*v, &out)) return fallback;
  return out;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out = "qcp " + Sanitize(frame.kind, false) + " " +
                    std::to_string(frame.body.size()) + "\n";
  for (const auto& [key, value] : frame.fields) {
    out += Sanitize(key, false) + " " + Sanitize(value, true) + "\n";
  }
  out += ".\n";
  out += frame.body;
  return out;
}

FrameParser::Result FrameParser::Fail(std::string* error,
                                      std::string message) {
  poisoned_ = true;
  if (error != nullptr) *error = std::move(message);
  return Result::kError;
}

FrameParser::Result FrameParser::Next(Frame* out, std::string* error) {
  if (poisoned_) return Fail(error, "parser poisoned by earlier error");
  // Parse the header from scratch on every call — headers are tiny; the
  // (possibly large) body is only a size check plus one substr.
  std::size_t pos = 0;
  auto next_line = [&](std::string_view* line) -> int {
    std::size_t eol = buf_.find('\n', pos);
    if (eol == std::string::npos) {
      return buf_.size() - pos > kMaxHeaderLine ? -1 : 0;
    }
    if (eol - pos > kMaxHeaderLine) return -1;
    *line = std::string_view(buf_).substr(pos, eol - pos);
    pos = eol + 1;
    return 1;
  };

  std::string_view line;
  int got = next_line(&line);
  if (got < 0) return Fail(error, "header line too long");
  if (got == 0) return Result::kNeedMore;
  if (line.substr(0, 4) != "qcp ") {
    return Fail(error, "bad frame magic (expected 'qcp')");
  }
  line.remove_prefix(4);
  std::size_t space = line.find(' ');
  if (space == std::string_view::npos || space == 0) {
    return Fail(error, "bad frame header (want 'qcp <kind> <bytes>')");
  }
  std::string kind(line.substr(0, space));
  std::uint64_t body_bytes = 0;
  if (!ParseU64(line.substr(space + 1), &body_bytes)) {
    return Fail(error, "bad frame body size");
  }
  if (body_bytes > kMaxBodyBytes) {
    return Fail(error, "frame body exceeds " +
                           std::to_string(kMaxBodyBytes) + " bytes");
  }

  std::vector<std::pair<std::string, std::string>> fields;
  while (true) {
    got = next_line(&line);
    if (got < 0) return Fail(error, "header line too long");
    if (got == 0) return Result::kNeedMore;
    if (line == ".") break;
    if (fields.size() >= kMaxFields) {
      return Fail(error, "too many header fields");
    }
    std::size_t sep = line.find(' ');
    if (sep == std::string_view::npos || sep == 0) {
      return Fail(error, "bad header field '" +
                             util::ClipForError(line) + "'");
    }
    fields.emplace_back(std::string(line.substr(0, sep)),
                        std::string(line.substr(sep + 1)));
  }

  if (buf_.size() - pos < body_bytes) return Result::kNeedMore;
  out->kind = std::move(kind);
  out->fields = std::move(fields);
  out->body = buf_.substr(pos, body_bytes);
  buf_.erase(0, pos + body_bytes);
  return Result::kFrame;
}

}  // namespace qc::api
