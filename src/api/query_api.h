#ifndef QC_API_QUERY_API_H_
#define QC_API_QUERY_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/session_options.h"
#include "db/database.h"
#include "db/hybrid_join.h"
#include "db/index_cache.h"
#include "db/ivm.h"
#include "util/run_report.h"

namespace qc::api {

/// One dataset-input problem, pinned to the 1-based line of the dataset
/// text it occurred on. Unlike the old per-binary plumbing — which
/// surfaced only the *first* MutationResult of a batched append, with no
/// position — every bad statement gets its own line-numbered diagnostic.
struct InputDiagnostic {
  int line = 0;
  std::string message;

  /// "line L: message".
  std::string ToString() const;
};

/// Outcome of LoadDataset. `ok` means the database now reflects the input:
/// under abort semantics that requires zero diagnostics (any error and
/// *nothing* is applied — the batched-append counterpart of SetRelation's
/// atomic validation); under continue semantics the valid rows are applied,
/// each bad one is skipped and reported, and `ok` stays true.
struct DatasetLoad {
  bool ok = false;
  bool applied = false;  ///< False when abort semantics rejected the input.
  std::string query_text;  ///< From the "query:" line; empty when absent.
  std::size_t tuples_applied = 0;
  std::size_t tuples_skipped = 0;  ///< Continue mode: bad rows skipped.
  std::vector<InputDiagnostic> diagnostics;
};

/// Parses the shared dataset text format
///
///   query: R(a,b), S(b,c)        (optional; at most one wins, last kept)
///   relation R:                  (block header)
///   1 2                          (one tuple per line; '#' comments, blank
///   2 3                           lines ignored)
///
/// and applies it to `db`. A block for an existing relation appends
/// (AddTuple per row); a new name creates the relation with the arity of
/// its first valid row. The whole text is validated before anything is
/// applied: with `continue_on_error == false` (abort) any diagnostic means
/// `db` is untouched; with true, bad rows are skipped individually. Used by
/// query_cli for its input file and by qc_serverd for `mutate` request
/// bodies, so both surfaces share one error model.
DatasetLoad LoadDataset(const std::string& text, db::Database* db,
                        bool continue_on_error);

/// LoadDataset split at its parse/apply seam, for callers that must
/// validate under one lock and mutate under the same lock without a staged
/// database clone (MvccDatabase::MutateLoggedInPlace). StageDataset runs
/// the parse and validation passes read-only against `db` and resolves
/// every block into a structured batch; `load` carries the verdict with
/// the exact diagnostics/skipped accounting LoadDataset reports. When
/// `load.ok`, ApplyDataset(&staging, db) against the SAME database state
/// cannot fail; it fills `load.tuples_applied` and flips `load.applied`.
struct DatasetStaging {
  struct Block {
    std::string relation;
    int header_line = 0;
    int arity = 0;
    bool create = false;  ///< SetRelation (new name) vs per-row append.
    std::vector<db::Tuple> tuples;
  };
  std::vector<Block> blocks;
  DatasetLoad load;
};
DatasetStaging StageDataset(const std::string& text, const db::Database& db,
                            bool continue_on_error);
db::MutationResult ApplyDataset(DatasetStaging* staging, db::Database* db);

/// LoadDataset over a file, with the failure classes kept apart: an
/// unreadable file (missing, permission, I/O error mid-read) sets
/// `io_ok == false` with an errno-backed `io_error` and never touches the
/// database, while a readable file with bad content surfaces through
/// `load.diagnostics` exactly like the in-memory form. Callers that used
/// to funnel both through one "load failed" message can now report (and
/// exit-code) them differently — an I/O error is an environment problem,
/// a parse error is an input problem.
struct DatasetFileLoad {
  bool io_ok = false;
  std::string io_error;  ///< Meaningful only when !io_ok.
  DatasetLoad load;      ///< Meaningful only when io_ok.
};
DatasetFileLoad LoadDatasetFile(const std::string& path, db::Database* db,
                                bool continue_on_error);

/// One query execution request against a pinned database snapshot — the
/// single programmatic entry point shared by query_cli and qc_serverd.
struct QueryRequest {
  std::uint64_t id = 0;  ///< Caller-chosen; echoed into report.server.
  std::string query_text;  ///< "R1(a,b), R2(b,c), ..." text form.
  SessionOptions options;  ///< Effective knobs (threads/deadline/rows).
  bool want_analysis = false;  ///< Also run the structural analyzer.
  /// Collect a span tree into the report. Requires exclusive use of the
  /// process-wide Trace (single-request tools only — qc_serverd leaves it
  /// off because concurrent requests would interleave spans).
  bool collect_trace = false;
};

/// What came back: either an input error (input_ok == false, `error` says
/// why, exit code 1) or an engine run with its status, result and a fully
/// populated RunReport (tool/server fields left for the caller to brand).
struct QueryResponse {
  bool input_ok = false;
  std::string error;  ///< Parse error / missing relation when !input_ok.
  /// The engine died on a resource failure (allocation) that is neither an
  /// input error nor a budget trip. `error` carries the diagnostic, the
  /// result is empty, and ExitCode() is 7 ("internal"). Callers can treat
  /// it as retryable — the next attempt may find memory.
  bool internal_error = false;
  util::RunStatus status = util::RunStatus::kCompleted;
  std::string method;         ///< Engine the auto-router picked.
  std::string analysis_text;  ///< Filled when want_analysis.
  db::JoinResult result;
  util::RunReport report;

  /// 1 for input errors, 7 for internal errors, else util::ExitCode(status).
  int ExitCode() const;
};

/// Parses, routes and evaluates `req.query_text` against `db`, which must
/// stay immutable for the duration (a Database the caller owns, or an MVCC
/// snapshot). `cache` may be shared across concurrent calls (or null).
QueryResponse ExecuteQuery(const QueryRequest& req, const db::Database& db,
                           db::IndexCache* cache);

/// Copies an index cache's stats into the report's cache section (no-op on
/// null cache, leaving `enabled` false).
void FillCacheSection(util::RunReport* report, const db::IndexCache* cache);

/// Copies a view registry's IVM counters into the report's ivm section
/// (marking it present). Callers with no registered views skip the call to
/// keep the historical report schema byte-for-byte.
void FillIvmSection(util::RunReport* report, const db::IvmStats& stats);

/// Copies the hybrid planner's decision record into the report's planner
/// section (marking it present). No-op when the planner never examined the
/// query (plan.pattern == kNone), keeping the historical schema intact.
void FillPlannerSection(util::RunReport* report, const db::HybridPlan& plan);

/// The one finishing path behind `--report-json`: writes `report` to
/// `opts.report_json` when set, prints the internal-error diagnostic for
/// unknown statuses, and returns the process exit code for `status` (or 1
/// when the report file cannot be written). Collapses the emission logic
/// query_cli, fpt_toolbox and the bench harnesses used to hand-roll.
int FinishReport(const SessionOptions& opts, const util::RunReport& report,
                 util::RunStatus status);

}  // namespace qc::api

#endif  // QC_API_QUERY_API_H_
