// qc_serverd: the MVCC-snapshot query daemon.
//
// Serves concurrent qcp/1 clients over loopback TCP. Every query pins a
// consistent snapshot of the database (writers never block readers), runs
// under the merged per-request budget, passes global admission control,
// and streams back batched rows plus a machine-readable RunReport.
//
// Usage:
//   qc_serverd [--port N] [--host ADDR] [--preload FILE]
//              [--view NAME=QUERY] [--triangle-view NAME=REL]
//              [--wal-dir DIR] [--fsync always|batch|off]
//              [--wal-batch-bytes N] [--wal-compact-bytes N]
//              [--max-concurrent N] [--queue-capacity N]
//              [--queue-timeout-ms N] [--batch-rows N]
//              [session flags: --threads/--deadline-ms/--max-rows/...]
//
// With --wal-dir the daemon is durable: it replays DIR's snapshot + log on
// boot (truncating any torn tail a crash left), logs every mutation before
// acknowledging it, and a kill -9 at any point recovers to exactly the
// acknowledged state (fsync=always) or a bounded tail (fsync=batch).
//
// Prints "qc_serverd listening on HOST:PORT" once ready (scripts key off
// this line), then serves until SIGINT/SIGTERM or a `shutdown` frame, then
// prints final stats JSON to stderr.

#include <array>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/query_api.h"
#include "api/session_options.h"
#include "server/server.h"

namespace {

qc::server::QueryServer* g_server = nullptr;

extern "C" void HandleSignal(int) {
  if (g_server != nullptr) g_server->SignalShutdown();
}

void PrintUsage() {
  std::cout
      << "usage: qc_serverd [options]\n"
      << "  --port N              listen port (default 0 = ephemeral)\n"
      << "  --host ADDR           listen address (default 127.0.0.1)\n"
      << "  --preload FILE        load a dataset file before serving\n"
      << "  --view NAME=QUERY     register a maintained join view (repeat "
         "ok)\n"
      << "  --triangle-view NAME=REL  register a triangle-count view over "
         "edge relation REL\n"
      << "  --max-concurrent N    queries executing at once (default 8)\n"
      << "  --queue-capacity N    admission queue slots (default 64)\n"
      << "  --queue-timeout-ms N  max queue wait, 0 = forever (default 0)\n"
      << "  --batch-rows N        rows per result batch frame (default 256)\n"
      << "  --wal-dir DIR         write-ahead-log directory (durability on)\n"
      << "  --fsync POLICY        always|batch|off (default always)\n"
      << "  --wal-batch-bytes N   fsync=batch: bytes between syncs (1MiB)\n"
      << "  --wal-compact-bytes N log size triggering compaction (64MiB)\n"
      << "  session defaults:" << qc::api::SessionFlagsUsage() << "\n";
}

bool ParseIntFlag(const char* flag, const char* text, int min_value,
                  int* out) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < min_value || v > 1 << 30) {
    std::cerr << flag << ": bad value '" << text << "'\n";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qc::server::ServerOptions options;
  std::string preload_path;
  // (name, kind, body) triples registered after recovery + preload.
  std::vector<std::array<std::string, 3>> view_flags;

  for (int i = 1; i < argc;) {
    std::string arg = argv[i];
    std::string error;
    int consumed =
        qc::api::ParseSessionFlag(argc, argv, i, &options.session, &error);
    if (consumed < 0) {
      std::cerr << error << "\n";
      return 1;
    }
    if (consumed > 0) {
      i += consumed;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << ": missing value\n";
        return nullptr;
      }
      return argv[i + 1];
    };
    if (arg == "--port") {
      const char* v = need_value("--port");
      if (v == nullptr || !ParseIntFlag("--port", v, 0, &options.port))
        return 1;
      i += 2;
    } else if (arg == "--host") {
      const char* v = need_value("--host");
      if (v == nullptr) return 1;
      options.host = v;
      i += 2;
    } else if (arg == "--preload") {
      const char* v = need_value("--preload");
      if (v == nullptr) return 1;
      preload_path = v;
      i += 2;
    } else if (arg == "--view" || arg == "--triangle-view") {
      const char* v = need_value(arg.c_str());
      if (v == nullptr) return 1;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::cerr << arg << ": want NAME=" 
                  << (arg == "--view" ? "QUERY" : "RELATION") << "\n";
        return 1;
      }
      view_flags.push_back(
          {std::string(v, eq - v),
           arg == "--view" ? std::string("join")
                           : std::string("triangle_count"),
           std::string(eq + 1)});
      i += 2;
    } else if (arg == "--max-concurrent") {
      const char* v = need_value("--max-concurrent");
      if (v == nullptr ||
          !ParseIntFlag("--max-concurrent", v, 0,
                        &options.admission.max_concurrent))
        return 1;
      i += 2;
    } else if (arg == "--queue-capacity") {
      const char* v = need_value("--queue-capacity");
      if (v == nullptr ||
          !ParseIntFlag("--queue-capacity", v, 0,
                        &options.admission.queue_capacity))
        return 1;
      i += 2;
    } else if (arg == "--queue-timeout-ms") {
      const char* v = need_value("--queue-timeout-ms");
      int ms = 0;
      if (v == nullptr || !ParseIntFlag("--queue-timeout-ms", v, 0, &ms))
        return 1;
      options.admission.queue_timeout_ms = static_cast<std::uint64_t>(ms);
      i += 2;
    } else if (arg == "--batch-rows") {
      const char* v = need_value("--batch-rows");
      if (v == nullptr ||
          !ParseIntFlag("--batch-rows", v, 1, &options.batch_rows))
        return 1;
      i += 2;
    } else if (arg == "--wal-dir") {
      const char* v = need_value("--wal-dir");
      if (v == nullptr) return 1;
      options.wal.dir = v;
      i += 2;
    } else if (arg == "--fsync") {
      const char* v = need_value("--fsync");
      if (v == nullptr) return 1;
      if (!qc::db::ParseFsyncPolicy(v, &options.wal.fsync)) {
        std::cerr << "--fsync: bad value '" << v
                  << "' (want always|batch|off)\n";
        return 1;
      }
      i += 2;
    } else if (arg == "--wal-batch-bytes") {
      const char* v = need_value("--wal-batch-bytes");
      int n = 0;
      if (v == nullptr || !ParseIntFlag("--wal-batch-bytes", v, 1, &n))
        return 1;
      options.wal.batch_bytes = static_cast<std::uint64_t>(n);
      i += 2;
    } else if (arg == "--wal-compact-bytes") {
      const char* v = need_value("--wal-compact-bytes");
      int n = 0;
      if (v == nullptr || !ParseIntFlag("--wal-compact-bytes", v, 0, &n))
        return 1;
      options.wal.compact_bytes = static_cast<std::uint64_t>(n);
      i += 2;
    } else {
      std::cerr << "unknown flag '" << arg << "' (see --help)\n";
      return 1;
    }
  }

  qc::server::QueryServer server(options);

  std::string error;
  if (!server.Recover(&error)) {
    std::cerr << "qc_serverd: " << error << "\n";
    return 7;
  }
  qc::server::RecoveryInfo rec = server.recovery();
  if (rec.ran) {
    std::cerr << "recovered " << rec.snapshot_records
              << " snapshot record(s) + " << rec.log_records
              << " log record(s), " << rec.torn_bytes_truncated
              << " torn byte(s) truncated, " << rec.request_ids
              << " request id(s) remembered, views_rebuilt="
              << rec.views_rebuilt << " views_failed=" << rec.views_failed
              << "\n";
  }

  // A durable restart already holds its data; re-applying --preload on top
  // would double every row. Preload only seeds an empty store.
  const bool skip_preload =
      rec.ran && (rec.snapshot_records + rec.log_records) > 0;
  if (!preload_path.empty() && skip_preload) {
    std::cerr << "skipping --preload " << preload_path
              << ": WAL recovery restored existing data\n";
  }
  if (!preload_path.empty() && !skip_preload) {
    // LoadDatasetFile keeps environment problems (unreadable file, exit 3
    // with an errno-backed message) apart from input problems (parse
    // diagnostics). Probe against a scratch database first so the I/O and
    // parse outcome is known before anything touches the live store.
    qc::db::Database probe;
    qc::api::DatasetFileLoad file_load = qc::api::LoadDatasetFile(
        preload_path, &probe, options.session.continue_on_input_error);
    if (!file_load.io_ok) {
      std::cerr << "cannot read preload file: " << file_load.io_error
                << "\n";
      return 3;
    }
    for (const auto& d : file_load.load.diagnostics) {
      std::cerr << preload_path << ": " << d.ToString() << "\n";
    }
    if (!file_load.load.ok) {
      std::cerr << "preload rejected; nothing applied\n";
      return 3;
    }
    // Re-read for the live (and, with --wal-dir, logged) application: a
    // preload must be durable like any other mutation, or a crash after
    // ingest would recover the ingested rows onto an empty base.
    std::ifstream in(preload_path);
    std::ostringstream text;
    text << in.rdbuf();
    qc::db::WalRecord record;
    record.kind = qc::db::WalRecord::Kind::kDataset;
    record.dataset = text.str();
    record.continue_on_error = options.session.continue_on_input_error;
    qc::api::DatasetLoad load;
    qc::db::MutationResult committed = server.database().MutateLogged(
        record, [&](qc::db::Database& db) {
          load = qc::api::LoadDataset(
              record.dataset, &db,
              options.session.continue_on_input_error);
          return load.ok
                     ? qc::db::MutationResult::Ok()
                     : qc::db::MutationResult::Fail("preload rejected");
        });
    if (!committed) {
      std::cerr << "preload failed: " << committed.message << "\n";
      return 3;
    }
    std::cerr << "preloaded " << load.tuples_applied << " tuples from "
              << preload_path << "\n";
  }

  // Register maintained views last: against the recovered + preloaded
  // state. A durable restart may already have rebuilt the same view from
  // its kViewDef record — an "already registered" rejection is then the
  // expected outcome, not an error.
  for (const auto& [name, kind, body] : view_flags) {
    // Same parse path the server's view_register frames and WAL recovery
    // use: build the durable record and decode it.
    qc::db::WalRecord record;
    record.kind = qc::db::WalRecord::Kind::kViewDef;
    record.relation = name;
    record.arity = kind == "join" ? 0 : 1;
    record.dataset = body;
    qc::db::ViewDefinition def;
    qc::db::MutationResult r = qc::db::ViewDefinitionFromRecord(record, &def);
    if (r) r = server.database().RegisterView(def);
    if (!r && r.message.find("already registered") != std::string::npos) {
      std::cerr << "view " << name << ": already registered (recovered)\n";
      continue;
    }
    if (!r) {
      std::cerr << "view " << name << ": " << r.message << "\n";
      return 3;
    }
    std::cerr << "view " << name << " registered (" << kind << ")\n";
  }

  if (!server.Start(&error)) {
    std::cerr << "qc_serverd: " << error << "\n";
    return 7;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "qc_serverd listening on " << options.host << ":"
            << server.port() << std::endl;

  server.Wait();
  server.Stop();
  g_server = nullptr;

  std::cerr << server.StatsJson() << "\n";
  return 0;
}
