// qc_loadgen: load-generator client for qc_serverd.
//
// Spawns N client threads issuing mixed read/write traffic (each client
// owns one connection), measures per-request latency, and reports
// queries/sec with p50/p99. Admission rejections (codes 8/9) are counted
// separately — under deliberate overload they are the expected signal, not
// a failure.
//
// Usage:
//   qc_loadgen --port N [--host ADDR] [--clients N] [--duration-ms N]
//              [--write-ratio PCT] [--query TEXT] [--write-relation NAME]
//              [--write-arity N] [--seed-demo] [--deadline-ms N]
//              [--max-rows N] [--json FILE] [--sample-report FILE]
//              [--retries N] [--shutdown]
//
// Crash-recovery smoke modes (single connection, mutually exclusive with
// the load loop):
//   --stream-mutations K   append tuple {i} for i = 0..K-1 to
//                          --write-relation as K individual mutations, each
//                          carrying a deterministic request id; prints
//                          "stream_acked=N stream_sent=K". The acked count
//                          is the durability floor a recovered server must
//                          reproduce.
//   --verify-prefix REL    query REL back and check its rows are exactly
//                          {0..n-1}; prints "verify_rows=n". With
//                          --expect-at-least N, fails unless n >= N.
//   --dump-rows REL        print REL's rows sorted, one per line (oracle
//                          material for diffing a recovered server against
//                          a never-crashed run).
//   --register-view SPEC   register a materialized view; SPEC is
//                          NAME=KIND=BODY (KIND join or triangle_count,
//                          BODY the query text / edge relation).
//   --dump-view NAME       print the maintained view's rows, one per line
//                          (diff material: a recovered server's view must
//                          match a recompute of the recovered data).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "util/json.h"

namespace {

constexpr char kDemoDataset[] =
    "query: R1(a,b), R2(a,c), R3(b,c)\n"
    "relation R1:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R2:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R3:\n0 1\n1 2\n2 0\n0 2\n";

struct Config {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 8;
  std::uint64_t duration_ms = 3000;
  int write_ratio = 0;  // Percent of requests that are mutations.
  std::string query = "R1(a,b), R2(a,c), R3(b,c)";
  std::string write_relation = "R1";
  int write_arity = 2;
  bool seed_demo = false;
  std::uint64_t deadline_ms = 0;  // Per-request option field.
  std::uint64_t max_rows = 0;     // Per-request option field.
  std::string json_path;
  std::string sample_report_path;
  bool send_shutdown = false;
  int retries = 0;  // Client retry policy (0 = no retries).
  std::uint64_t stream_mutations = 0;
  std::string verify_prefix_relation;
  std::uint64_t expect_at_least = 0;
  std::string dump_rows_relation;
  std::string register_view_spec;  // NAME=KIND=BODY.
  std::string dump_view_name;
};

struct WorkerResult {
  std::vector<double> query_latencies_ms;
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;
  std::uint64_t rejected = 0;   // Admission code 8.
  std::uint64_t timed_out = 0;  // Admission code 9.
  std::uint64_t input_errors = 0;
  std::uint64_t transport_errors = 0;
  std::string first_error;
};

std::mutex g_sample_mu;
std::string g_sample_report;

qc::server::RetryOptions RetryPolicy(const Config& cfg, std::uint64_t seed) {
  qc::server::RetryOptions retry;
  retry.max_retries = cfg.retries;
  retry.seed = 0x9e3779b97f4a7c15ull ^ seed;
  return retry;
}

void Worker(const Config& cfg, unsigned seed, WorkerResult* out) {
  qc::server::Client client;
  client.set_retry(RetryPolicy(cfg, seed));
  std::string error;
  if (!client.Connect(cfg.host, cfg.port, &error)) {
    out->transport_errors++;
    out->first_error = error;
    return;
  }

  std::vector<std::pair<std::string, std::string>> fields;
  if (cfg.deadline_ms > 0)
    fields.emplace_back("deadline_ms", std::to_string(cfg.deadline_ms));
  if (cfg.max_rows > 0)
    fields.emplace_back("max_rows", std::to_string(cfg.max_rows));

  std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ seed;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg.duration_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const bool write = cfg.write_ratio > 0 &&
                       static_cast<int>(next_rand() % 100) < cfg.write_ratio;
    if (write) {
      // Append one random tuple from a small domain so result sizes stay
      // bounded while still churning relation versions.
      std::string body = "relation " + cfg.write_relation + ":\n";
      for (int i = 0; i < cfg.write_arity; ++i) {
        if (i > 0) body += ' ';
        body += std::to_string(next_rand() % 32);
      }
      body += '\n';
      qc::server::MutateReply r = client.Mutate(body);
      if (!r.ok) {
        out->transport_errors++;
        if (out->first_error.empty()) out->first_error = r.error;
        return;
      }
      if (r.rejected) {
        out->input_errors++;
      } else {
        out->mutations++;
      }
      continue;
    }

    const auto t0 = std::chrono::steady_clock::now();
    qc::server::QueryReply r = client.Query(cfg.query, fields);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r.ok) {
      out->transport_errors++;
      if (out->first_error.empty()) out->first_error = r.error;
      return;
    }
    if (r.rejected) {
      if (r.code == qc::server::kAdmissionRejectedCode) {
        out->rejected++;
      } else if (r.code == qc::server::kAdmissionTimeoutCode) {
        out->timed_out++;
      } else {
        out->input_errors++;
        if (out->first_error.empty()) out->first_error = r.message;
      }
      continue;
    }
    out->queries++;
    out->query_latencies_ms.push_back(ms);
    if (!r.report_json.empty()) {
      std::lock_guard<std::mutex> lock(g_sample_mu);
      if (g_sample_report.empty()) g_sample_report = r.report_json;
    }
  }
}

// --stream-mutations: append {0}, {1}, ..., {K-1} to the write relation as
// K individual single-tuple mutations. Each carries a deterministic
// request id, so a retry after a lost ack deduplicates instead of
// double-appending. Prints the acked count — the recovery oracle's floor.
int StreamMutations(const Config& cfg) {
  qc::server::Client client;
  client.set_retry(RetryPolicy(cfg, 0xabcdefull));
  std::string error;
  if (!client.Connect(cfg.host, cfg.port, &error)) {
    std::cerr << "qc_loadgen: " << error << "\n";
    return 7;
  }
  std::uint64_t acked = 0;
  std::string first_error;
  // Ids must be stable across reruns of the same stream (so a client that
  // restarts after a partial stream re-deduplicates its prefix) but
  // distinct across target relations.
  std::uint64_t id_base = 0x51c0ull;
  for (char c : cfg.write_relation) {
    id_base = id_base * 131 + static_cast<unsigned char>(c);
  }
  for (std::uint64_t i = 0; i < cfg.stream_mutations; ++i) {
    const std::string body =
        "relation " + cfg.write_relation + ":\n" + std::to_string(i) + "\n";
    const std::uint64_t request_id = (id_base << 24) + i + 1;
    qc::server::MutateReply r = client.Mutate(body, "", request_id);
    if (!r.ok || r.rejected) {
      first_error = r.ok ? r.diagnostics : r.error;
      break;
    }
    ++acked;
  }
  std::printf("stream_acked=%llu stream_sent=%llu\n",
              static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(cfg.stream_mutations));
  std::fflush(stdout);
  if (acked < cfg.stream_mutations) {
    std::cerr << "qc_loadgen: stream stopped early: " << first_error << "\n";
    return 7;
  }
  return 0;
}

// Queries a unary relation back and returns its sorted rows, or nullopt on
// transport/query failure.
bool FetchRows(const Config& cfg, const std::string& relation,
               std::vector<std::uint64_t>* rows, std::string* error) {
  qc::server::Client client;
  client.set_retry(RetryPolicy(cfg, 0xfe7c4ull));
  if (!client.Connect(cfg.host, cfg.port, error)) return false;
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("max_rows", "0");
  qc::server::QueryReply r = client.Query(relation + "(x)", fields);
  if (!r.ok) {
    *error = r.error;
    return false;
  }
  if (r.rejected) {
    *error = "query rejected: " + r.message;
    return false;
  }
  rows->clear();
  std::uint64_t value = 0;
  bool in_number = false;
  for (char c : r.row_text + "\n") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else {
      if (in_number) rows->push_back(value);
      value = 0;
      in_number = false;
    }
  }
  std::sort(rows->begin(), rows->end());
  return true;
}

// --verify-prefix: the streamed relation must hold exactly {0..n-1} — every
// acked mutation durable, no tuple applied twice, no gap. n may exceed the
// acked count (an ack lost to the crash can still have committed).
int VerifyPrefix(const Config& cfg) {
  std::vector<std::uint64_t> rows;
  std::string error;
  if (!FetchRows(cfg, cfg.verify_prefix_relation, &rows, &error)) {
    std::cerr << "qc_loadgen: verify: " << error << "\n";
    return 7;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] != i) {
      std::cerr << "qc_loadgen: verify: row " << i << " is " << rows[i]
                << " (want contiguous prefix {0.." << rows.size() - 1
                << "})\n";
      return 7;
    }
  }
  std::printf("verify_rows=%llu\n",
              static_cast<unsigned long long>(rows.size()));
  if (rows.size() < cfg.expect_at_least) {
    std::cerr << "qc_loadgen: verify: " << rows.size()
              << " rows recovered but " << cfg.expect_at_least
              << " were acked — durability violation\n";
    return 7;
  }
  return 0;
}

int DumpRows(const Config& cfg) {
  std::vector<std::uint64_t> rows;
  std::string error;
  if (!FetchRows(cfg, cfg.dump_rows_relation, &rows, &error)) {
    std::cerr << "qc_loadgen: dump: " << error << "\n";
    return 7;
  }
  for (std::uint64_t v : rows) std::printf("%llu\n",
                                           static_cast<unsigned long long>(v));
  return 0;
}

// --register-view NAME=KIND=BODY over the wire (retryable: a WAL-append
// failure comes back as a retryable error frame).
int RegisterView(const Config& cfg) {
  const std::size_t eq1 = cfg.register_view_spec.find('=');
  const std::size_t eq2 =
      eq1 == std::string::npos ? eq1
                               : cfg.register_view_spec.find('=', eq1 + 1);
  if (eq1 == std::string::npos || eq2 == std::string::npos) {
    std::cerr << "qc_loadgen: --register-view wants NAME=KIND=BODY\n";
    return 1;
  }
  qc::server::Client client;
  client.set_retry(RetryPolicy(cfg, 0x71e3ull));
  std::string error;
  if (!client.Connect(cfg.host, cfg.port, &error)) {
    std::cerr << "qc_loadgen: " << error << "\n";
    return 7;
  }
  qc::server::ViewRegisterReply r = client.RegisterView(
      cfg.register_view_spec.substr(0, eq1),
      cfg.register_view_spec.substr(eq1 + 1, eq2 - eq1 - 1),
      cfg.register_view_spec.substr(eq2 + 1));
  if (!r.ok || r.rejected) {
    std::cerr << "qc_loadgen: register-view: "
              << (r.ok ? r.message : r.error) << "\n";
    return 7;
  }
  std::printf("view_rows=%llu view_epoch=%llu\n",
              static_cast<unsigned long long>(r.rows),
              static_cast<unsigned long long>(r.epoch));
  return 0;
}

// --dump-view: print the maintained rows exactly as served (already
// normalized: lex-sorted, deduplicated), one per line.
int DumpView(const Config& cfg) {
  qc::server::Client client;
  client.set_retry(RetryPolicy(cfg, 0x71e4ull));
  std::string error;
  if (!client.Connect(cfg.host, cfg.port, &error)) {
    std::cerr << "qc_loadgen: " << error << "\n";
    return 7;
  }
  qc::server::QueryReply r = client.ViewRead(cfg.dump_view_name);
  if (!r.ok || r.rejected) {
    std::cerr << "qc_loadgen: dump-view: " << (r.ok ? r.message : r.error)
              << "\n";
    return 7;
  }
  std::fputs(r.row_text.c_str(), stdout);
  return 0;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int Usage() {
  std::cerr
      << "usage: qc_loadgen --port N [--host ADDR] [--clients N]\n"
      << "  [--duration-ms N] [--write-ratio PCT] [--query TEXT]\n"
      << "  [--write-relation NAME] [--write-arity N] [--seed-demo]\n"
      << "  [--deadline-ms N] [--max-rows N] [--json FILE]\n"
      << "  [--sample-report FILE] [--retries N] [--shutdown]\n"
      << "  [--stream-mutations K] [--verify-prefix REL]\n"
      << "  [--expect-at-least N] [--dump-rows REL]\n"
      << "  [--register-view NAME=KIND=BODY] [--dump-view NAME]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = value())) {
      cfg.host = v;
    } else if (arg == "--port" && (v = value())) {
      cfg.port = std::atoi(v);
    } else if (arg == "--clients" && (v = value())) {
      cfg.clients = std::atoi(v);
    } else if (arg == "--duration-ms" && (v = value())) {
      cfg.duration_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--write-ratio" && (v = value())) {
      cfg.write_ratio = std::atoi(v);
    } else if (arg == "--query" && (v = value())) {
      cfg.query = v;
    } else if (arg == "--write-relation" && (v = value())) {
      cfg.write_relation = v;
    } else if (arg == "--write-arity" && (v = value())) {
      cfg.write_arity = std::atoi(v);
    } else if (arg == "--seed-demo") {
      cfg.seed_demo = true;
    } else if (arg == "--deadline-ms" && (v = value())) {
      cfg.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-rows" && (v = value())) {
      cfg.max_rows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json" && (v = value())) {
      cfg.json_path = v;
    } else if (arg == "--sample-report" && (v = value())) {
      cfg.sample_report_path = v;
    } else if (arg == "--retries" && (v = value())) {
      cfg.retries = std::atoi(v);
    } else if (arg == "--stream-mutations" && (v = value())) {
      cfg.stream_mutations = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verify-prefix" && (v = value())) {
      cfg.verify_prefix_relation = v;
    } else if (arg == "--expect-at-least" && (v = value())) {
      cfg.expect_at_least = std::strtoull(v, nullptr, 10);
    } else if (arg == "--dump-rows" && (v = value())) {
      cfg.dump_rows_relation = v;
    } else if (arg == "--register-view" && (v = value())) {
      cfg.register_view_spec = v;
    } else if (arg == "--dump-view" && (v = value())) {
      cfg.dump_view_name = v;
    } else if (arg == "--shutdown") {
      cfg.send_shutdown = true;
    } else {
      return Usage();
    }
  }
  if (cfg.port <= 0 || cfg.clients <= 0) return Usage();

  // Smoke modes run a single scripted connection and skip the load loop.
  if (cfg.stream_mutations > 0) return StreamMutations(cfg);
  if (!cfg.verify_prefix_relation.empty()) return VerifyPrefix(cfg);
  if (!cfg.register_view_spec.empty()) return RegisterView(cfg);
  if (!cfg.dump_view_name.empty()) return DumpView(cfg);
  if (!cfg.dump_rows_relation.empty()) {
    const int rc = DumpRows(cfg);
    if (rc != 0 || !cfg.send_shutdown) return rc;
    qc::server::Client closer;
    std::string error;
    if (closer.Connect(cfg.host, cfg.port, &error)) closer.Shutdown(&error);
    return 0;
  }

  if (cfg.seed_demo) {
    qc::server::Client seeder;
    std::string error;
    if (!seeder.Connect(cfg.host, cfg.port, &error)) {
      std::cerr << "qc_loadgen: " << error << "\n";
      return 7;
    }
    qc::server::MutateReply r = seeder.Mutate(kDemoDataset);
    if (!r.ok || r.rejected) {
      std::cerr << "qc_loadgen: demo seed failed: "
                << (r.ok ? r.diagnostics : r.error) << "\n";
      return 7;
    }
  }

  std::vector<WorkerResult> results(static_cast<std::size_t>(cfg.clients));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back(Worker, std::cref(cfg), static_cast<unsigned>(c + 1),
                         &results[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  WorkerResult total;
  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    total.queries += r.queries;
    total.mutations += r.mutations;
    total.rejected += r.rejected;
    total.timed_out += r.timed_out;
    total.input_errors += r.input_errors;
    total.transport_errors += r.transport_errors;
    if (total.first_error.empty()) total.first_error = r.first_error;
    latencies.insert(latencies.end(), r.query_latencies_ms.begin(),
                     r.query_latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  double mean = 0.0;
  for (double ms : latencies) mean += ms;
  if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
  const double qps =
      wall_ms > 0.0
          ? static_cast<double>(total.queries + total.mutations) * 1000.0 /
                wall_ms
          : 0.0;

  std::printf(
      "clients=%d wall_ms=%.0f qps=%.1f queries=%llu mutations=%llu "
      "p50_ms=%.3f p99_ms=%.3f rejected=%llu timed_out=%llu "
      "input_errors=%llu transport_errors=%llu\n",
      cfg.clients, wall_ms, qps,
      static_cast<unsigned long long>(total.queries),
      static_cast<unsigned long long>(total.mutations), p50, p99,
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.timed_out),
      static_cast<unsigned long long>(total.input_errors),
      static_cast<unsigned long long>(total.transport_errors));
  if (!total.first_error.empty()) {
    std::cerr << "first error: " << total.first_error << "\n";
  }

  if (!cfg.json_path.empty()) {
    qc::util::JsonWriter w;
    w.BeginObject();
    w.Key("tool").String("qc_loadgen");
    w.Key("clients").Int(cfg.clients);
    w.Key("duration_ms").Uint(cfg.duration_ms);
    w.Key("write_ratio").Int(cfg.write_ratio);
    w.Key("wall_ms").Double(wall_ms);
    w.Key("qps").Double(qps);
    w.Key("queries").Uint(total.queries);
    w.Key("mutations").Uint(total.mutations);
    w.Key("p50_ms").Double(p50);
    w.Key("p99_ms").Double(p99);
    w.Key("mean_ms").Double(mean);
    w.Key("rejected").Uint(total.rejected);
    w.Key("timed_out").Uint(total.timed_out);
    w.Key("input_errors").Uint(total.input_errors);
    w.Key("transport_errors").Uint(total.transport_errors);
    w.EndObject();
    std::ofstream out(cfg.json_path);
    out << w.Take() << "\n";
    if (!out) {
      std::cerr << "qc_loadgen: cannot write " << cfg.json_path << "\n";
      return 1;
    }
  }

  if (!cfg.sample_report_path.empty()) {
    std::lock_guard<std::mutex> lock(g_sample_mu);
    if (g_sample_report.empty()) {
      std::cerr << "qc_loadgen: no successful query; no sample report\n";
      return 7;
    }
    std::ofstream out(cfg.sample_report_path);
    out << g_sample_report << "\n";
    if (!out) {
      std::cerr << "qc_loadgen: cannot write " << cfg.sample_report_path
                << "\n";
      return 1;
    }
  }

  if (cfg.send_shutdown) {
    qc::server::Client closer;
    std::string error;
    if (closer.Connect(cfg.host, cfg.port, &error) &&
        !closer.Shutdown(&error)) {
      std::cerr << "qc_loadgen: shutdown failed: " << error << "\n";
    }
  }

  return total.transport_errors == 0 ? 0 : 7;
}
