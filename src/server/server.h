#ifndef QC_SERVER_SERVER_H_
#define QC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/query_api.h"
#include "api/session_options.h"
#include "api/wire.h"
#include "db/index_cache.h"
#include "db/mvcc.h"
#include "server/admission.h"

namespace qc::server {

struct ServerOptions {
  /// Session defaults applied to every request; a request's own `option`
  /// fields override deadline_ms/max_rows/threads per query (they can
  /// tighten or set, never touch the server's report/cache config).
  api::SessionOptions session;
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; resolved port via QueryServer::port().
  AdmissionOptions admission;
  /// Result rows streamed per "batch" frame.
  int batch_rows = 256;
};

struct ServerStats {
  AdmissionStats admission;
  db::MvccStats mvcc;
  db::IndexCacheStats cache;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;
  std::uint64_t input_errors = 0;
  std::uint64_t protocol_errors = 0;
};

/// qc_serverd's engine: a long-lived multi-tenant query service over one
/// MvccDatabase.
///
/// Request lifecycle (the tentpole pipeline):
///   1. admission  — the global AdmissionController queues or rejects with
///                   a structured diagnostic (code 8/9) when saturated;
///   2. snapshot   — the query pins an MVCC snapshot (copy-on-write
///                   relation handles; writers never block readers, and
///                   IndexCache entries stay valid across snapshots since
///                   they are immutable and version-keyed);
///   3. execute    — api::ExecuteQuery under the per-request budget merged
///                   from the server session defaults;
///   4. stream     — result rows go out in bounded "batch" frames followed
///                   by a per-request RunReport frame.
///
/// Mutations (`mutate` frames) apply the shared dataset format as one
/// serialized write transaction with line-numbered diagnostics and the
/// same continue-vs-abort semantics as query_cli.
///
/// Transport is pluggable-by-construction: HandleRequest() maps one
/// request frame to its reply frames with no socket anywhere, which is how
/// the unit tests drive the full pipeline in-process; Start() adds the
/// loopback TCP front end (one thread per connection, frames over qcp/1).
class QueryServer {
 public:
  explicit QueryServer(const ServerOptions& options);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// The live database, e.g. for preloading before Start().
  db::MvccDatabase& database() { return mvcc_; }

  /// Binds host:port and spawns the accept loop. False + error on failure.
  bool Start(std::string* error);
  /// Resolved listening port (after Start).
  int port() const { return port_; }
  /// Blocks until the listener shuts down (Stop() or a `shutdown` frame).
  void Wait();
  /// Closes the listener and every connection, then joins. Idempotent.
  void Stop();
  /// True once a `shutdown` frame was honored.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe shutdown trigger (atomic store + shutdown(2) on the
  /// listener): Wait() returns, then the caller runs Stop(). qc_serverd's
  /// SIGINT/SIGTERM handler calls this.
  void SignalShutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
    CloseListener();
  }

  /// Serves one request frame, returning the reply frame sequence. Thread-
  /// safe; this is the whole server minus sockets.
  std::vector<api::Frame> HandleRequest(const api::Frame& request);

  ServerStats stats() const;
  /// Stats as JSON (the `stats` frame body).
  std::string StatsJson() const;

 private:
  std::vector<api::Frame> HandleQuery(const api::Frame& request);
  std::vector<api::Frame> HandleMutate(const api::Frame& request);
  void AcceptLoop();
  void ServeConnection(int fd);
  void CloseListener();

  const ServerOptions options_;
  db::MvccDatabase mvcc_;
  std::unique_ptr<db::IndexCache> cache_;
  AdmissionController admission_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> mutations_{0};
  std::atomic<std::uint64_t> input_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  /// Live connection fds (for Stop() to shut down) and a count of
  /// in-flight detached connection threads, drained on Stop().
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::set<int> conn_fds_;
  int live_connections_ = 0;
};

}  // namespace qc::server

#endif  // QC_SERVER_SERVER_H_
