#ifndef QC_SERVER_SERVER_H_
#define QC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/query_api.h"
#include "api/session_options.h"
#include "api/wire.h"
#include "db/index_cache.h"
#include "db/ivm.h"
#include "db/mvcc.h"
#include "db/wal.h"
#include "server/admission.h"

namespace qc::server {

struct ServerOptions {
  /// Session defaults applied to every request; a request's own `option`
  /// fields override deadline_ms/max_rows/threads/hybrid/hybrid_delta per
  /// query (they can tighten or set, never touch the server's report/cache
  /// config).
  api::SessionOptions session;
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; resolved port via QueryServer::port().
  AdmissionOptions admission;
  /// Result rows streamed per "batch" frame.
  int batch_rows = 256;
  /// Durability: wal.dir empty = in-memory only (the default, and the
  /// pre-WAL behavior). Non-empty = Recover() replays dir's snapshot+log
  /// into the database and every subsequent mutation is logged before it
  /// is acknowledged (see db/wal.h for the fsync policy semantics).
  db::WalOptions wal;
  /// Idempotency window: how many applied request ids the server remembers
  /// (and persists across compaction) for duplicate-mutation detection.
  std::size_t dedup_window = 4096;
};

/// Outcome of QueryServer::Recover — surfaced in logs and StatsJson so an
/// operator can see exactly what a restart replayed.
struct RecoveryInfo {
  bool ran = false;  ///< False until Recover() is called with a wal dir.
  std::uint64_t snapshot_records = 0;
  std::uint64_t log_records = 0;
  std::uint64_t torn_bytes_truncated = 0;
  std::uint64_t duplicate_records_skipped = 0;  ///< Re-logged request ids.
  std::uint64_t stale_log_bytes_skipped = 0;  ///< Snapshot-covered log.
  std::uint64_t request_ids = 0;  ///< Dedup ids recovered.
  std::uint64_t view_defs = 0;       ///< kViewDef records replayed.
  std::uint64_t views_rebuilt = 0;   ///< Views re-registered after replay.
  std::uint64_t views_failed = 0;    ///< Definitions that failed to rebuild.
};

struct ServerStats {
  AdmissionStats admission;
  db::MvccStats mvcc;
  db::IndexCacheStats cache;
  db::WalStats wal;
  db::IvmStats ivm;
  RecoveryInfo recovery;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;
  std::uint64_t mutations_deduped = 0;
  std::uint64_t view_registers = 0;
  std::uint64_t view_reads = 0;
  std::uint64_t input_errors = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t queue_sheds = 0;
  std::uint64_t drain_rejects = 0;
  bool draining = false;
  bool wal_enabled = false;
};

/// qc_serverd's engine: a long-lived multi-tenant query service over one
/// MvccDatabase.
///
/// Request lifecycle (the tentpole pipeline):
///   1. admission  — the global AdmissionController queues or rejects with
///                   a structured diagnostic (code 8/9) when saturated;
///                   a request whose deadline already elapsed in the queue
///                   is shed (code 4, "shed-queue-deadline") before any
///                   work is wasted on it;
///   2. snapshot   — the query pins an MVCC snapshot (copy-on-write
///                   relation handles; writers never block readers, and
///                   IndexCache entries stay valid across snapshots since
///                   they are immutable and version-keyed);
///   3. execute    — api::ExecuteQuery under the per-request budget merged
///                   from the server session defaults;
///   4. stream     — result rows go out in bounded "batch" frames followed
///                   by a per-request RunReport frame.
///
/// Mutations (`mutate` frames) apply the shared dataset format as one
/// serialized write transaction with line-numbered diagnostics and the
/// same continue-vs-abort semantics as query_cli. With a WAL attached the
/// transaction is logged before it is acknowledged, and a client-supplied
/// `request_id` makes it idempotent: a retry of an already-applied id is
/// acknowledged without re-applying (the dedup window survives crashes —
/// it is recovered from the WAL and persisted across compactions).
///
/// Degradation: `shutdown` switches the server to draining — in-flight
/// requests finish, new work is rejected with a retryable structured error
/// ("server-draining", code 6) — and `health` reports serving/draining plus
/// durability state so load balancers can steer before hitting errors.
/// Every error frame carries `retryable` so clients know whether backoff
/// and retry can succeed (see Client::RetryOptions).
///
/// Transport is pluggable-by-construction: HandleRequest() maps one
/// request frame to its reply frames with no socket anywhere, which is how
/// the unit tests drive the full pipeline in-process; Start() adds the
/// loopback TCP front end (one thread per connection, frames over qcp/1).
class QueryServer {
 public:
  explicit QueryServer(const ServerOptions& options);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// The live database, e.g. for preloading before Start().
  db::MvccDatabase& database() { return mvcc_; }

  /// Replays options.wal's snapshot + log into the database, truncates any
  /// torn tail, opens the log for appending, and attaches it so every
  /// subsequent mutation is durable. Call before Start() (and before any
  /// preload). No-op returning true when options.wal.dir is empty. False +
  /// error on unreplayable state — refusing to serve beats silently
  /// serving a diverged store.
  bool Recover(std::string* error);
  RecoveryInfo recovery() const;

  /// Binds host:port and spawns the accept loop. False + error on failure.
  bool Start(std::string* error);
  /// Resolved listening port (after Start).
  int port() const { return port_; }
  /// Blocks until the listener shuts down (Stop() or a `shutdown` frame).
  void Wait();
  /// Closes the listener and every connection, then joins. In-flight
  /// requests finish and their replies are flushed (connections are shut
  /// down read-side first). Idempotent.
  void Stop();
  /// True once a `shutdown` frame was honored.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Switches to draining: in-flight work finishes, new query/mutate
  /// frames get a retryable "server-draining" rejection. health/stats/ping
  /// keep working so orchestration can watch the drain.
  void Drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe shutdown trigger (atomic store + shutdown(2) on the
  /// listener): Wait() returns, then the caller runs Stop(). qc_serverd's
  /// SIGINT/SIGTERM handler calls this.
  void SignalShutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
    draining_.store(true, std::memory_order_relaxed);
    CloseListener();
  }

  /// Serves one request frame, returning the reply frame sequence. Thread-
  /// safe; this is the whole server minus sockets.
  std::vector<api::Frame> HandleRequest(const api::Frame& request);

  ServerStats stats() const;
  /// Stats as JSON (the `stats` frame body).
  std::string StatsJson() const;

 private:
  std::vector<api::Frame> HandleQuery(const api::Frame& request);
  std::vector<api::Frame> HandleMutate(const api::Frame& request);
  std::vector<api::Frame> HandleViewRegister(const api::Frame& request);
  std::vector<api::Frame> HandleViewRead(const api::Frame& request);
  api::Frame HandleHealth(std::uint64_t id) const;
  void AcceptLoop();
  void ServeConnection(int fd, std::uint64_t conn_id);
  void CloseListener();

  /// Dedup bookkeeping. Its own lock, taken inside mvcc_'s writer lock by
  /// the mutate path (check-and-remember must be atomic with the apply,
  /// or two concurrent retries of one id could both pass the check and
  /// both commit); the inverse nesting never occurs.
  bool SeenRequestId(std::uint64_t id) const;
  void RememberRequestId(std::uint64_t id);
  std::vector<std::uint64_t> DedupWindow() const;

  const ServerOptions options_;
  db::MvccDatabase mvcc_;
  /// Materialized views maintained under mvcc_'s write epochs (attached in
  /// the constructor); `view_register`/`view_read` frames and WAL-recovered
  /// kViewDef records feed it.
  db::ViewRegistry views_;
  db::Wal wal_;
  std::unique_ptr<db::IndexCache> cache_;
  AdmissionController admission_;

  mutable std::mutex recovery_mu_;
  RecoveryInfo recovery_;

  /// Applied request ids, most recent last, capped at dedup_window.
  mutable std::mutex dedup_mu_;
  std::unordered_set<std::uint64_t> dedup_set_;
  std::deque<std::uint64_t> dedup_order_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> mutations_{0};
  std::atomic<std::uint64_t> mutations_deduped_{0};
  std::atomic<std::uint64_t> view_registers_{0};
  std::atomic<std::uint64_t> view_reads_{0};
  std::atomic<std::uint64_t> input_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> queue_sheds_{0};
  std::atomic<std::uint64_t> drain_rejects_{0};

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};

  /// Live connection fds (for Stop() to shut down) and the connection
  /// thread handles. Threads are never detached: a finishing connection
  /// parks its own handle in finished_threads_ (it cannot join itself),
  /// the accept loop reaps those opportunistically, and Stop() joins
  /// everything — the join IS the graceful drain, and no connection
  /// thread can touch a destroyed member afterwards.
  std::mutex conn_mu_;
  std::set<int> conn_fds_;
  int live_connections_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::thread> finished_threads_;
};

}  // namespace qc::server

#endif  // QC_SERVER_SERVER_H_
