#include "server/admission.h"

#include <chrono>

namespace qc::server {

AdmissionController::Decision AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  Decision decision;
  auto snapshot_state = [&] {
    decision.queue_depth = queued_;
    decision.running = running_;
  };
  if (closed_) {
    decision.outcome = Outcome::kClosed;
    snapshot_state();
    return decision;
  }
  if (running_ < options_.max_concurrent) {
    ++running_;
    ++admitted_;
    decision.outcome = Outcome::kAdmitted;
    snapshot_state();
    return decision;
  }
  if (queued_ >= options_.queue_capacity) {
    ++rejected_;
    decision.outcome = Outcome::kRejectedSaturated;
    snapshot_state();
    return decision;
  }

  ++queued_;
  if (static_cast<std::uint64_t>(queued_) > max_queued_) {
    max_queued_ = static_cast<std::uint64_t>(queued_);
  }
  auto wait_start = std::chrono::steady_clock::now();
  auto admissible = [&] {
    return closed_ || running_ < options_.max_concurrent;
  };
  bool got_slot;
  if (options_.queue_timeout_ms > 0) {
    got_slot = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.queue_timeout_ms),
        admissible);
  } else {
    cv_.wait(lock, admissible);
    got_slot = true;
  }
  --queued_;
  decision.queue_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wait_start)
                          .count();
  if (closed_) {
    decision.outcome = Outcome::kClosed;
  } else if (!got_slot) {
    ++timed_out_;
    decision.outcome = Outcome::kTimedOut;
  } else {
    ++running_;
    ++admitted_;
    decision.outcome = Outcome::kAdmitted;
  }
  snapshot_state();
  return decision;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.timed_out = timed_out_;
  s.max_queued = max_queued_;
  s.running = running_;
  s.queued = queued_;
  return s;
}

}  // namespace qc::server
