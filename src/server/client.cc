#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace qc::server {

namespace {

std::uint64_t FieldUint(const api::Frame& f, const char* key) {
  return f.FindUint(key, 0);
}

int FieldInt(const api::Frame& f, const char* key) {
  return static_cast<int>(f.FindUint(key, 0));
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::set_retry(const RetryOptions& retry) {
  retry_ = retry;
  rng_ = retry.seed != 0 ? retry.seed : 1;
}

std::uint64_t Client::NextRand() {
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return rng_;
}

std::uint64_t Client::NextRequestId() {
  if (id_rng_ == 0) {
    // Mix per-process entropy into the seed: pid and object address
    // separate concurrent clients, monotonic time separates successive
    // runs. A splitmix64 finisher spreads the mix across all 64 bits.
    std::uint64_t seed = retry_.seed;
    seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
    seed ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this));
    seed += 0x9E3779B97F4A7C15ull;
    seed = (seed ^ (seed >> 30)) * 0xBF58476D1CE4E5B9ull;
    seed = (seed ^ (seed >> 27)) * 0x94D049BB133111EBull;
    seed ^= seed >> 31;
    id_rng_ = seed != 0 ? seed : 1;
  }
  id_rng_ ^= id_rng_ << 13;
  id_rng_ ^= id_rng_ >> 7;
  id_rng_ ^= id_rng_ << 17;
  return id_rng_;
}

void Client::Backoff(int attempt) {
  std::uint64_t cap = retry_.base_backoff_ms;
  for (int i = 0; i < attempt && cap < retry_.max_backoff_ms; ++i) cap *= 2;
  if (cap > retry_.max_backoff_ms) cap = retry_.max_backoff_ms;
  if (cap == 0) return;
  // Jitter in [cap/2, cap]: enough spread to de-synchronize clients,
  // never less than half the intended delay.
  const std::uint64_t half = cap / 2;
  const std::uint64_t sleep_ms = half + NextRand() % (cap - half + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  // A parser carried over from a dead connection may hold a torn partial
  // frame (or be poisoned); the new byte stream starts clean.
  parser_ = api::FrameParser();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address " + host;
    Close();
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    Close();
    return false;
  }
  // Request frames are small; without this Nagle holds the tail of a
  // frame until the server's delayed ACK (~40ms per request).
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  if (host_.empty()) {
    *error = "not connected";
    return false;
  }
  return Connect(host_, port_, error);
}

bool Client::SendFrame(const api::Frame& frame, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  const std::string wire = api::EncodeFrame(frame);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // ECONNRESET/EPIPE here mean the server went away mid-send — a
      // transport failure the retry layer can heal with a reconnect.
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::RecvFrame(api::Frame* frame, std::string* error) {
  char buf[1 << 16];
  while (true) {
    std::string parse_error;
    api::FrameParser::Result r = parser_.Next(frame, &parse_error);
    if (r == api::FrameParser::Result::kFrame) return true;
    if (r == api::FrameParser::Result::kError) {
      *error = "protocol: " + parse_error;
      return false;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      // Mid-reply EOF: the server died or dropped us. The parser may hold
      // a torn frame — Connect() resets it before the stream restarts.
      *error = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    parser_.Feed(buf, static_cast<std::size_t>(n));
  }
}

QueryReply Client::Query(
    const std::string& query_text,
    const std::vector<std::pair<std::string, std::string>>& extra_fields) {
  QueryReply reply = QueryOnce(query_text, extra_fields);
  int attempt = 0;
  while (attempt < retry_.max_retries &&
         (!reply.ok || (reply.rejected && reply.retryable))) {
    if (!reply.ok) Close();  // Transport failure: the stream is garbage.
    Backoff(attempt);
    ++attempt;
    std::string error;
    if (!EnsureConnected(&error)) {
      reply = QueryReply{};
      reply.error = error;
      reply.attempts = attempt + 1;
      continue;
    }
    reply = QueryOnce(query_text, extra_fields);
    reply.attempts = attempt + 1;
  }
  return reply;
}

QueryReply Client::QueryOnce(
    const std::string& query_text,
    const std::vector<std::pair<std::string, std::string>>& extra_fields) {
  api::Frame req;
  req.kind = "query";
  req.Add("id", std::to_string(next_id_++));
  for (const auto& [k, v] : extra_fields) req.Add(k, v);
  req.body = query_text;
  return QueryRoundTrip(std::move(req));
}

QueryReply Client::QueryRoundTrip(api::Frame req) {
  QueryReply reply;
  if (!SendFrame(req, &reply.error)) return reply;

  while (true) {
    api::Frame f;
    if (!RecvFrame(&f, &reply.error)) return reply;
    if (f.kind == "error") {
      reply.ok = true;
      reply.rejected = true;
      reply.retryable = FieldUint(f, "retryable") != 0;
      reply.code = FieldInt(f, "code");
      if (const std::string* s = f.Find("reason")) reply.reason = *s;
      if (const std::string* s = f.Find("message")) reply.message = *s;
      reply.queue_depth = FieldInt(f, "queue_depth");
      reply.running = FieldInt(f, "running");
      return reply;
    }
    if (f.kind == "hdr") {
      if (const std::string* s = f.Find("status")) reply.status = *s;
      if (const std::string* s = f.Find("method")) reply.method = *s;
      reply.rows = FieldUint(f, "rows");
      reply.truncated = FieldUint(f, "truncated") != 0;
      reply.epoch = FieldUint(f, "epoch");
      if (const std::string* s = f.Find("attributes")) {
        std::string attr;
        for (char c : *s) {
          if (c == ' ') {
            if (!attr.empty()) reply.attributes.push_back(attr);
            attr.clear();
          } else {
            attr += c;
          }
        }
        if (!attr.empty()) reply.attributes.push_back(attr);
      }
      reply.analysis_text = f.body;
    } else if (f.kind == "batch") {
      reply.row_text += f.body;
    } else if (f.kind == "report") {
      reply.report_json = f.body;
    } else if (f.kind == "end") {
      reply.code = FieldInt(f, "code");
      reply.ok = true;
      return reply;
    } else {
      reply.error = "unexpected reply frame '" + f.kind + "'";
      return reply;
    }
  }
}

ViewRegisterReply Client::RegisterView(const std::string& name,
                                       const std::string& kind,
                                       const std::string& body) {
  ViewRegisterReply reply = RegisterViewOnce(name, kind, body);
  int attempt = 0;
  while (attempt < retry_.max_retries &&
         (!reply.ok || (reply.rejected && reply.retryable))) {
    if (!reply.ok) Close();
    Backoff(attempt);
    ++attempt;
    std::string error;
    if (!EnsureConnected(&error)) {
      reply = ViewRegisterReply{};
      reply.error = error;
      reply.attempts = attempt + 1;
      continue;
    }
    reply = RegisterViewOnce(name, kind, body);
    reply.attempts = attempt + 1;
  }
  return reply;
}

ViewRegisterReply Client::RegisterViewOnce(const std::string& name,
                                           const std::string& kind,
                                           const std::string& body) {
  ViewRegisterReply reply;
  api::Frame req;
  req.kind = "view_register";
  req.Add("id", std::to_string(next_id_++));
  req.Add("name", name);
  req.Add("kind", kind);
  req.body = body;
  if (!SendFrame(req, &reply.error)) return reply;

  api::Frame f;
  if (!RecvFrame(&f, &reply.error)) return reply;
  if (f.kind == "error") {
    reply.ok = true;
    reply.rejected = true;
    reply.retryable = FieldUint(f, "retryable") != 0;
    reply.code = FieldInt(f, "code");
    if (const std::string* s = f.Find("reason")) reply.reason = *s;
    if (const std::string* s = f.Find("message")) reply.message = *s;
    return reply;
  }
  if (f.kind != "end") {
    reply.error = "unexpected reply frame '" + f.kind + "'";
    return reply;
  }
  reply.ok = true;
  reply.code = FieldInt(f, "code");
  reply.rows = FieldUint(f, "rows");
  reply.epoch = FieldUint(f, "epoch");
  return reply;
}

QueryReply Client::ViewRead(const std::string& name) {
  api::Frame req;
  req.kind = "view_read";
  req.Add("id", std::to_string(next_id_++));
  req.Add("name", name);
  QueryReply reply = QueryRoundTrip(req);
  int attempt = 0;
  while (attempt < retry_.max_retries &&
         (!reply.ok || (reply.rejected && reply.retryable))) {
    if (!reply.ok) Close();
    Backoff(attempt);
    ++attempt;
    std::string error;
    if (!EnsureConnected(&error)) {
      reply = QueryReply{};
      reply.error = error;
      reply.attempts = attempt + 1;
      continue;
    }
    api::Frame again;
    again.kind = "view_read";
    again.Add("id", std::to_string(next_id_++));
    again.Add("name", name);
    reply = QueryRoundTrip(std::move(again));
    reply.attempts = attempt + 1;
  }
  return reply;
}

MutateReply Client::Mutate(const std::string& dataset_text,
                           const std::string& on_input_error,
                           std::uint64_t request_id) {
  // A retried mutation MUST carry an idempotency id, or a lost ack would
  // double-apply on replay. Auto-generate one (nonzero) whenever a retry
  // policy could resend.
  if (request_id == 0 && retry_.max_retries > 0) {
    do {
      request_id = NextRequestId();
    } while (request_id == 0);
  }
  MutateReply reply = MutateOnce(dataset_text, on_input_error, request_id);
  int attempt = 0;
  while (attempt < retry_.max_retries &&
         (!reply.ok || (reply.rejected && reply.retryable))) {
    if (!reply.ok) Close();
    Backoff(attempt);
    ++attempt;
    std::string error;
    if (!EnsureConnected(&error)) {
      reply = MutateReply{};
      reply.error = error;
      reply.request_id = request_id;
      reply.attempts = attempt + 1;
      continue;
    }
    reply = MutateOnce(dataset_text, on_input_error, request_id);
    reply.attempts = attempt + 1;
  }
  return reply;
}

MutateReply Client::MutateOnce(const std::string& dataset_text,
                               const std::string& on_input_error,
                               std::uint64_t request_id) {
  MutateReply reply;
  reply.request_id = request_id;
  api::Frame req;
  req.kind = "mutate";
  req.Add("id", std::to_string(next_id_++));
  if (request_id != 0) req.Add("request_id", std::to_string(request_id));
  if (!on_input_error.empty()) req.Add("on_input_error", on_input_error);
  req.body = dataset_text;
  if (!SendFrame(req, &reply.error)) return reply;

  api::Frame f;
  if (!RecvFrame(&f, &reply.error)) return reply;
  if (f.kind == "error") {
    reply.ok = true;
    reply.rejected = true;
    reply.retryable = FieldUint(f, "retryable") != 0;
    reply.code = FieldInt(f, "code");
    reply.diagnostics = f.body;
    return reply;
  }
  if (f.kind != "end") {
    reply.error = "unexpected reply frame '" + f.kind + "'";
    return reply;
  }
  reply.ok = true;
  reply.code = FieldInt(f, "code");
  reply.deduped = FieldUint(f, "deduped") != 0;
  reply.applied = FieldUint(f, "applied");
  reply.skipped = FieldUint(f, "skipped");
  reply.epoch = FieldUint(f, "epoch");
  reply.diagnostics = f.body;
  return reply;
}

bool Client::Ping(std::string* error) {
  api::Frame req;
  req.kind = "ping";
  req.Add("id", std::to_string(next_id_++));
  if (!SendFrame(req, error)) return false;
  api::Frame f;
  if (!RecvFrame(&f, error)) return false;
  if (f.kind != "pong") {
    *error = "unexpected reply frame '" + f.kind + "'";
    return false;
  }
  return true;
}

HealthReply Client::Health() {
  HealthReply reply;
  api::Frame req;
  req.kind = "health";
  req.Add("id", std::to_string(next_id_++));
  if (!SendFrame(req, &reply.error)) return reply;
  api::Frame f;
  if (!RecvFrame(&f, &reply.error)) return reply;
  if (f.kind != "health-reply") {
    reply.error = "unexpected reply frame '" + f.kind + "'";
    return reply;
  }
  reply.ok = true;
  if (const std::string* s = f.Find("status")) reply.status = *s;
  reply.epoch = FieldUint(f, "epoch");
  reply.wal = FieldUint(f, "wal") != 0;
  reply.running = FieldInt(f, "running");
  reply.queued = FieldInt(f, "queued");
  return reply;
}

bool Client::Stats(std::string* stats_json, std::string* error) {
  api::Frame req;
  req.kind = "stats";
  req.Add("id", std::to_string(next_id_++));
  if (!SendFrame(req, error)) return false;
  api::Frame f;
  if (!RecvFrame(&f, error)) return false;
  if (f.kind != "stats-reply") {
    *error = "unexpected reply frame '" + f.kind + "'";
    return false;
  }
  *stats_json = f.body;
  return true;
}

bool Client::Shutdown(std::string* error) {
  api::Frame req;
  req.kind = "shutdown";
  req.Add("id", std::to_string(next_id_++));
  if (!SendFrame(req, error)) return false;
  api::Frame f;
  if (!RecvFrame(&f, error)) return false;
  if (f.kind != "end") {
    *error = "unexpected reply frame '" + f.kind + "'";
    return false;
  }
  return true;
}

}  // namespace qc::server
