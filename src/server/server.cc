#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/fault.h"
#include "util/json.h"

namespace qc::server {

namespace {

/// Request option fields a client may set per query. Everything else on
/// the SessionOptions surface (report paths, cache sizing, input-error
/// policy) is server configuration and is rejected per-request.
bool IsPerQueryOption(const std::string& key) {
  return key == "deadline_ms" || key == "max_rows" || key == "threads" ||
         key == "hybrid" || key == "hybrid_delta";
}

/// Codes a client may retry after backoff: admission pushback (8/9), the
/// draining/cancelled rejection (6), and internal resource failures (7).
/// Input and protocol errors (1-3) and deadline/budget trips (4/5) will
/// fail identically on a retry, so they are final.
bool IsRetryableCode(int code) {
  return code == 6 || code == 7 || code == kAdmissionRejectedCode ||
         code == kAdmissionTimeoutCode;
}

/// `retryable`: -1 = derive from the code, 0/1 = explicit override (the
/// queue-deadline shed reuses the deadline code 4 but IS retryable — the
/// queue, not the query, consumed the budget).
api::Frame ErrorFrame(std::uint64_t id, int code, const std::string& reason,
                      const std::string& message, int retryable = -1) {
  api::Frame frame;
  frame.kind = "error";
  frame.Add("id", std::to_string(id));
  frame.Add("code", std::to_string(code));
  frame.Add("reason", reason);
  const bool retry = retryable < 0 ? IsRetryableCode(code) : retryable != 0;
  frame.Add("retryable", retry ? "1" : "0");
  frame.Add("message", message);
  return frame;
}

bool SendAll(int fd, const std::string& data) {
  if (util::FaultsEnabled() && util::FaultPoint("socket.write")) {
    return false;  // Injected connection failure: caller drops the conn.
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(const ServerOptions& options)
    : options_(options),
      cache_(options.session.MakeIndexCache()),
      admission_(options.admission) {
  // Always attached: with no registered views the per-mutation cost is one
  // empty() check, and view_register frames need the hookup in place.
  mvcc_.AttachViews(&views_);
}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Recover(std::string* error) {
  if (options_.wal.dir.empty()) return true;

  // Replay the durable state into the database. Structured records go
  // through the (not yet logging) MvccDatabase ops; dataset records go
  // through the exact LoadDataset path their original mutate frames took.
  // View definitions are stashed and rebuilt only after the data replay
  // finishes — a view registers against the final recovered state, and
  // with the WAL still detached nothing is re-logged.
  std::vector<db::WalRecord> view_defs;
  db::WalRecovery recovered = db::Wal::Replay(
      options_.wal, [this, &view_defs](const db::WalRecord& record) {
        switch (record.kind) {
          case db::WalRecord::Kind::kSetRelation:
            return mvcc_.SetRelation(record.relation, record.arity,
                                     record.tuples);
          case db::WalRecord::Kind::kAddTuples:
            return mvcc_.AddTuples(record.relation, record.tuples);
          case db::WalRecord::Kind::kDataset: {
            // Same staged in-place path live mutate frames take (the WAL
            // is not attached yet, so nothing is re-logged). Replaying a
            // long ingest log this way is O(total rows); the old
            // clone-per-record form made recovery time quadratic in the
            // log length.
            api::DatasetStaging staging;
            return mvcc_.MutateLoggedInPlace(
                record,
                [&](const db::Database& live) {
                  staging = api::StageDataset(record.dataset, live,
                                              record.continue_on_error);
                  return staging.load.ok
                             ? db::MutationResult::Ok()
                             : db::MutationResult::Fail("dataset rejected");
                },
                [&](db::Database& live) {
                  return api::ApplyDataset(&staging, &live);
                });
          }
          case db::WalRecord::Kind::kDedup:
            break;  // Consumed by Replay itself.
          case db::WalRecord::Kind::kViewDef:
            view_defs.push_back(record);
            break;
        }
        return db::MutationResult::Ok();
      });
  if (!recovered.ok) {
    *error = "wal recovery failed: " + recovered.error;
    return false;
  }
  for (std::uint64_t id : recovered.request_ids) RememberRequestId(id);

  // Rebuild registered views from the recovered data. Lenient on purpose:
  // view state is derived (the data replay above stays strict), so a
  // definition that no longer validates is counted and skipped rather
  // than refusing to serve the store.
  std::uint64_t views_rebuilt = 0;
  std::uint64_t views_failed = 0;
  for (const db::WalRecord& record : view_defs) {
    db::ViewDefinition def;
    db::MutationResult r = db::ViewDefinitionFromRecord(record, &def);
    if (r && views_.Has(def.name)) continue;  // Snapshot + log duplicate.
    if (r) r = mvcc_.RegisterView(def);
    if (r) {
      ++views_rebuilt;
    } else {
      ++views_failed;
    }
  }

  if (!wal_.Open(options_.wal, error)) return false;
  mvcc_.AttachWal(&wal_);

  std::lock_guard<std::mutex> lock(recovery_mu_);
  recovery_.ran = true;
  recovery_.view_defs = view_defs.size();
  recovery_.views_rebuilt = views_rebuilt;
  recovery_.views_failed = views_failed;
  recovery_.snapshot_records = recovered.snapshot_records;
  recovery_.log_records = recovered.log_records;
  recovery_.torn_bytes_truncated = recovered.torn_bytes_truncated;
  recovery_.duplicate_records_skipped = recovered.duplicate_records_skipped;
  recovery_.stale_log_bytes_skipped = recovered.stale_log_bytes_skipped;
  recovery_.request_ids = recovered.request_ids.size();
  return true;
}

RecoveryInfo QueryServer::recovery() const {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  return recovery_;
}

bool QueryServer::SeenRequestId(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  return dedup_set_.count(id) != 0;
}

void QueryServer::RememberRequestId(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(dedup_mu_);
  if (!dedup_set_.insert(id).second) return;
  dedup_order_.push_back(id);
  while (dedup_order_.size() > options_.dedup_window) {
    dedup_set_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

std::vector<std::uint64_t> QueryServer::DedupWindow() const {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  return {dedup_order_.begin(), dedup_order_.end()};
}

std::vector<api::Frame> QueryServer::HandleRequest(
    const api::Frame& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  // Draining: in-flight work keeps going, new work gets a retryable
  // rejection. Health, stats and ping stay up so orchestration can watch.
  if (draining() &&
      (request.kind == "query" || request.kind == "mutate" ||
       request.kind == "view_register" || request.kind == "view_read")) {
    drain_rejects_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 6, "server-draining",
                       "server is draining; retry against a serving "
                       "instance")};
  }
  if (request.kind == "query") return HandleQuery(request);
  if (request.kind == "mutate") return HandleMutate(request);
  if (request.kind == "view_register") return HandleViewRegister(request);
  if (request.kind == "view_read") return HandleViewRead(request);
  if (request.kind == "ping") {
    api::Frame pong;
    pong.kind = "pong";
    pong.Add("id", std::to_string(id));
    return {pong};
  }
  if (request.kind == "health") return {HandleHealth(id)};
  if (request.kind == "stats") {
    api::Frame reply;
    reply.kind = "stats-reply";
    reply.Add("id", std::to_string(id));
    reply.body = StatsJson();
    return {reply};
  }
  if (request.kind == "shutdown") {
    Drain();  // In-flight work finishes; new work is rejected retryably.
    shutdown_requested_.store(true, std::memory_order_relaxed);
    CloseListener();  // Unblocks the accept loop; Wait() returns.
    api::Frame end;
    end.kind = "end";
    end.Add("id", std::to_string(id));
    end.Add("code", "0");
    return {end};
  }
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  return {ErrorFrame(id, 2, "bad-request",
                     "unknown request kind '" + request.kind + "'")};
}

api::Frame QueryServer::HandleHealth(std::uint64_t id) const {
  api::Frame reply;
  reply.kind = "health-reply";
  reply.Add("id", std::to_string(id));
  reply.Add("status", draining() ? "draining" : "serving");
  reply.Add("epoch", std::to_string(mvcc_.Epoch()));
  reply.Add("wal", wal_.is_open() ? "1" : "0");
  if (wal_.is_open()) {
    reply.Add("wal_bytes", std::to_string(wal_.log_bytes()));
    reply.Add("fsync", db::ToString(wal_.options().fsync));
  }
  AdmissionStats adm = admission_.stats();
  reply.Add("running", std::to_string(adm.running));
  reply.Add("queued", std::to_string(adm.queued));
  return reply;
}

std::vector<api::Frame> QueryServer::HandleQuery(const api::Frame& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);

  api::SessionOptions opts = options_.session;
  opts.report_json.clear();  // Per-request reports travel on the wire.
  bool want_analysis = false;
  for (const auto& [key, value] : request.fields) {
    if (key == "id") continue;
    if (key == "want_analysis") {
      want_analysis = value == "1" || value == "true";
      continue;
    }
    if (IsPerQueryOption(key)) {
      std::string err;
      if (!api::SetSessionOption(&opts, key, value, &err)) {
        input_errors_.fetch_add(1, std::memory_order_relaxed);
        return {ErrorFrame(id, 2, "bad-request", err)};
      }
      continue;
    }
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 2, "bad-request",
                       "unknown request field '" + key + "'")};
  }

  // 1. Admission: queue-or-reject before any work is done. A saturated
  // queue pushes back on this request alone with a structured diagnostic
  // instead of degrading every running client.
  AdmissionTicket ticket(&admission_, admission_.Admit());
  if (!ticket.admitted()) {
    const auto& d = ticket.decision();
    int code = kAdmissionRejectedCode;
    std::string reason = "admission-rejected";
    if (d.outcome == AdmissionController::Outcome::kTimedOut) {
      code = kAdmissionTimeoutCode;
      reason = "admission-timeout";
    } else if (d.outcome == AdmissionController::Outcome::kClosed) {
      code = util::ExitCode(util::RunStatus::kCancelled);
      reason = "server-shutting-down";
    }
    api::Frame frame = ErrorFrame(
        id, code, reason,
        "admission queue saturated (" + std::to_string(d.running) +
            " running, " + std::to_string(d.queue_depth) + " queued)");
    frame.Add("queue_depth", std::to_string(d.queue_depth));
    frame.Add("running", std::to_string(d.running));
    return {frame};
  }

  // 1b. Deadline-aware shedding: a request whose deadline already elapsed
  // while it sat in the admission queue would only burn an executor slot
  // to produce a deadline error. Shed it now with its own structured
  // diagnostic — a retry (with fresh deadline) may well succeed, so the
  // deadline code 4 is augmented with an explicit shed reason.
  if (opts.deadline_ms > 0 &&
      ticket.decision().queue_ms >= static_cast<double>(opts.deadline_ms)) {
    queue_sheds_.fetch_add(1, std::memory_order_relaxed);
    api::Frame frame = ErrorFrame(
        id, util::ExitCode(util::RunStatus::kDeadlineExceeded),
        "shed-queue-deadline",
        "deadline_ms=" + std::to_string(opts.deadline_ms) +
            " elapsed during " +
            std::to_string(static_cast<std::uint64_t>(
                ticket.decision().queue_ms)) +
            "ms in the admission queue; request shed before execution",
        /*retryable=*/1);
    frame.Add("queue_ms",
              std::to_string(static_cast<std::uint64_t>(
                  ticket.decision().queue_ms)));
    return {frame};
  }

  // 2. Snapshot: pin an immutable MVCC view. Writers keep going; this
  // query reads frozen relation handles whose version stamps keep the
  // shared IndexCache warm across snapshots.
  db::MvccSnapshot snapshot = mvcc_.Snapshot();

  // 3. Execute under the merged per-request budget.
  api::QueryRequest qreq;
  qreq.id = id;
  qreq.query_text = request.body;
  qreq.options = opts;
  qreq.want_analysis = want_analysis;
  api::QueryResponse resp = api::ExecuteQuery(qreq, *snapshot.db,
                                              cache_.get());
  if (!resp.input_ok) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 1, "input", resp.error)};
  }
  if (resp.internal_error) {
    // Resource failure inside the engine (bad_alloc — real or injected):
    // the request dies structurally, the server and every other request
    // keep going, and the client may retry.
    return {ErrorFrame(id, 7, "internal", resp.error)};
  }
  resp.report.tool = "qc_serverd";
  resp.report.server.present = true;
  resp.report.server.request_id = id;
  resp.report.server.queue_ms = ticket.decision().queue_ms;
  resp.report.server.snapshot_epoch = snapshot.epoch;
  if (!views_.empty()) api::FillIvmSection(&resp.report, views_.stats());

  // 4. Stream: hdr, bounded row batches, per-request report, end.
  std::vector<api::Frame> frames;
  api::Frame hdr;
  hdr.kind = "hdr";
  hdr.Add("id", std::to_string(id));
  hdr.Add("status", std::string(util::ToString(resp.status)));
  hdr.Add("method", resp.method);
  hdr.Add("rows", std::to_string(resp.result.tuples.size()));
  hdr.Add("truncated", resp.result.truncated ? "1" : "0");
  hdr.Add("epoch", std::to_string(snapshot.epoch));
  std::string attrs;
  for (const auto& a : resp.result.attributes) {
    if (!attrs.empty()) attrs += ' ';
    attrs += a;
  }
  hdr.Add("attributes", attrs);
  hdr.body = resp.analysis_text;
  frames.push_back(std::move(hdr));

  const std::size_t batch_rows =
      options_.batch_rows > 0 ? static_cast<std::size_t>(options_.batch_rows)
                              : 256;
  for (std::size_t begin = 0; begin < resp.result.tuples.size();
       begin += batch_rows) {
    std::size_t end = std::min(begin + batch_rows, resp.result.tuples.size());
    api::Frame batch;
    batch.kind = "batch";
    batch.Add("id", std::to_string(id));
    batch.Add("rows", std::to_string(end - begin));
    for (std::size_t i = begin; i < end; ++i) {
      std::string line;
      for (db::Value v : resp.result.tuples[i]) {
        if (!line.empty()) line += ' ';
        line += std::to_string(v);
      }
      batch.body += line;
      batch.body += '\n';
    }
    frames.push_back(std::move(batch));
  }

  api::Frame report;
  report.kind = "report";
  report.Add("id", std::to_string(id));
  report.body = resp.report.ToJson();
  frames.push_back(std::move(report));

  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", std::to_string(resp.ExitCode()));
  frames.push_back(std::move(end));
  return frames;
}

std::vector<api::Frame> QueryServer::HandleViewRegister(
    const api::Frame& request) {
  view_registers_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  const std::string* name = request.Find("name");
  if (name == nullptr || name->empty()) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 2, "bad-request",
                       "view_register needs a non-empty 'name' field")};
  }
  std::string kind = "join";
  if (const std::string* k = request.Find("kind")) kind = *k;

  // Reuse the durable record codec as the single parse path: the frame is
  // converted to the kViewDef record it would persist as, then decoded —
  // recovery replays exactly the same bytes through exactly the same code.
  db::WalRecord record;
  record.kind = db::WalRecord::Kind::kViewDef;
  record.relation = *name;
  record.dataset = request.body;
  if (kind == "join") {
    record.arity = 0;
  } else if (kind == "triangle_count") {
    record.arity = 1;
  } else {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 2, "bad-request",
                       "unknown view kind '" + kind +
                           "' (expected join|triangle_count)")};
  }
  db::ViewDefinition def;
  db::MutationResult parsed = db::ViewDefinitionFromRecord(record, &def);
  if (!parsed) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 1, "input", parsed.message)};
  }
  db::MutationResult registered = mvcc_.RegisterView(def);
  if (!registered) {
    if (registered.message.rfind("wal append failed", 0) == 0) {
      // Durability failed, not the definition: retryable, like a mutate.
      return {ErrorFrame(id, 7, "wal", registered.message)};
    }
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 1, "input", registered.message)};
  }
  db::ViewRead state = views_.Read(*name);
  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", "0");
  end.Add("name", *name);
  end.Add("rows", std::to_string(state.rows.size()));
  end.Add("epoch", std::to_string(state.epoch));
  return {end};
}

std::vector<api::Frame> QueryServer::HandleViewRead(
    const api::Frame& request) {
  view_reads_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  const std::string* name = request.Find("name");
  if (name == nullptr || name->empty()) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 2, "bad-request",
                       "view_read needs a non-empty 'name' field")};
  }
  const auto started = std::chrono::steady_clock::now();
  db::ViewRead state = views_.Read(*name);
  if (!state.ok) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 1, "input", state.error)};
  }

  // Answered from maintained state: no admission ticket, no snapshot, no
  // engine — the whole point of paying for maintenance on the write path.
  // The reply stream mirrors HandleQuery's (hdr / batch / report / end) so
  // clients decode both with one path; method says where the rows came
  // from.
  util::RunReport report;
  report.tool = "qc_serverd";
  report.status = util::RunStatus::kCompleted;
  report.threads = 1;
  report.server.present = true;
  report.server.request_id = id;
  report.server.queue_ms = 0.0;
  report.server.snapshot_epoch = state.epoch;
  api::FillIvmSection(&report, views_.stats());
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - started)
                       .count();

  std::vector<api::Frame> frames;
  api::Frame hdr;
  hdr.kind = "hdr";
  hdr.Add("id", std::to_string(id));
  hdr.Add("status", std::string(util::ToString(util::RunStatus::kCompleted)));
  hdr.Add("method", "ivm");
  hdr.Add("rows", std::to_string(state.rows.size()));
  hdr.Add("truncated", "0");
  hdr.Add("epoch", std::to_string(state.epoch));
  std::string attrs;
  for (const auto& a : state.attributes) {
    if (!attrs.empty()) attrs += ' ';
    attrs += a;
  }
  hdr.Add("attributes", attrs);
  frames.push_back(std::move(hdr));

  const std::size_t batch_rows =
      options_.batch_rows > 0 ? static_cast<std::size_t>(options_.batch_rows)
                              : 256;
  for (std::size_t begin = 0; begin < state.rows.size();
       begin += batch_rows) {
    std::size_t end = std::min(begin + batch_rows, state.rows.size());
    api::Frame batch;
    batch.kind = "batch";
    batch.Add("id", std::to_string(id));
    batch.Add("rows", std::to_string(end - begin));
    for (std::size_t i = begin; i < end; ++i) {
      std::string line;
      for (db::Value v : state.rows[i]) {
        if (!line.empty()) line += ' ';
        line += std::to_string(v);
      }
      batch.body += line;
      batch.body += '\n';
    }
    frames.push_back(std::move(batch));
  }

  api::Frame report_frame;
  report_frame.kind = "report";
  report_frame.Add("id", std::to_string(id));
  report_frame.body = report.ToJson();
  frames.push_back(std::move(report_frame));

  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", "0");
  frames.push_back(std::move(end));
  return frames;
}

std::vector<api::Frame> QueryServer::HandleMutate(const api::Frame& request) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  const std::uint64_t request_id = request.FindUint("request_id", 0);
  bool continue_on_error = options_.session.continue_on_input_error;
  if (const std::string* v = request.Find("on_input_error")) {
    api::SessionOptions tmp;
    std::string err;
    if (!api::SetSessionOption(&tmp, "on_input_error", *v, &err)) {
      input_errors_.fetch_add(1, std::memory_order_relaxed);
      return {ErrorFrame(id, 2, "bad-request", err)};
    }
    continue_on_error = tmp.continue_on_input_error;
  }

  // Idempotent replay: a mutation whose request_id already committed
  // (possibly before a crash — the dedup window is recovered from the WAL)
  // is acknowledged without re-applying. This is what makes client-side
  // mutation retry safe: ack lost on the wire, retry arrives, no double
  // insert.
  auto dedup_ack = [this, id] {
    mutations_deduped_.fetch_add(1, std::memory_order_relaxed);
    api::Frame end;
    end.kind = "end";
    end.Add("id", std::to_string(id));
    end.Add("code", "0");
    end.Add("applied", "0");
    end.Add("skipped", "0");
    end.Add("diagnostics", "0");
    end.Add("deduped", "1");
    end.Add("epoch", std::to_string(mvcc_.Epoch()));
    return end;
  };
  // Fast path only — an already-applied id skips the staging work. The
  // authoritative check re-runs under the writer lock below, where it is
  // atomic with the apply; two concurrent retries of the same id can both
  // get past this unlocked look.
  if (request_id != 0 && SeenRequestId(request_id)) {
    return {dedup_ack()};
  }

  db::WalRecord record;
  record.kind = db::WalRecord::Kind::kDataset;
  record.request_id = request_id;
  record.dataset = request.body;
  record.continue_on_error = continue_on_error;

  // Stage (parse + validate, read-only) and apply in place under one
  // writer lock — no staged database clone, so a long stream of
  // single-tuple mutate frames costs O(total rows), not O(rows^2).
  bool deduped = false;
  api::DatasetStaging staging;
  db::MutationResult committed = mvcc_.MutateLoggedInPlace(
      record,
      [&](const db::Database& live) {
        if (request_id != 0 && SeenRequestId(request_id)) {
          deduped = true;
          return db::MutationResult::Fail("duplicate request_id");
        }
        staging = api::StageDataset(request.body, live, continue_on_error);
        return staging.load.ok
                   ? db::MutationResult::Ok()
                   : db::MutationResult::Fail("dataset rejected");
      },
      [&](db::Database& live) {
        db::MutationResult applied = api::ApplyDataset(&staging, &live);
        // Remember while still inside the writer lock: a concurrent retry
        // of this id must either see it here or serialize behind the lock
        // and see it in its validate step — never neither.
        if (applied) RememberRequestId(request_id);
        return applied;
      });
  if (deduped) return {dedup_ack()};
  const api::DatasetLoad& load = staging.load;

  std::string diag_body;
  for (const api::InputDiagnostic& d : load.diagnostics) {
    diag_body += d.ToString();
    diag_body += '\n';
  }
  if (!load.ok) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    api::Frame frame = ErrorFrame(
        id, 1, "input",
        "dataset rejected with " + std::to_string(load.diagnostics.size()) +
            " error(s); nothing applied");
    frame.Add("diagnostics", std::to_string(load.diagnostics.size()));
    frame.body = diag_body;
    return {frame};
  }
  if (!committed) {
    // The dataset was valid but durability failed (WAL I/O error or
    // injected fault). Nothing was applied — staged-clone rollback — so a
    // retry is safe and may succeed once the log is writable again.
    return {ErrorFrame(id, 7, "wal", committed.message)};
  }
  // Opportunistic compaction keeps wal.log bounded; failure is non-fatal
  // (the log just stays long) but is surfaced in stats via the WAL stats.
  std::string compact_error;
  mvcc_.MaybeCompactWal(DedupWindow(), &compact_error);

  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", "0");
  end.Add("applied", std::to_string(load.tuples_applied));
  end.Add("skipped", std::to_string(load.tuples_skipped));
  end.Add("diagnostics", std::to_string(load.diagnostics.size()));
  end.Add("epoch", std::to_string(mvcc_.Epoch()));
  end.body = diag_body;
  return {end};
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.admission = admission_.stats();
  s.mvcc = mvcc_.stats();
  s.ivm = views_.stats();
  if (cache_ != nullptr) s.cache = cache_->stats();
  s.wal = wal_.stats();
  s.recovery = recovery();
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.mutations_deduped = mutations_deduped_.load(std::memory_order_relaxed);
  s.view_registers = view_registers_.load(std::memory_order_relaxed);
  s.view_reads = view_reads_.load(std::memory_order_relaxed);
  s.input_errors = input_errors_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.queue_sheds = queue_sheds_.load(std::memory_order_relaxed);
  s.drain_rejects = drain_rejects_.load(std::memory_order_relaxed);
  s.draining = draining();
  s.wal_enabled = wal_.is_open();
  return s;
}

std::string QueryServer::StatsJson() const {
  ServerStats s = stats();
  util::JsonWriter w;
  w.BeginObject();
  w.Key("connections").Uint(s.connections);
  w.Key("requests").Uint(s.requests);
  w.Key("queries").Uint(s.queries);
  w.Key("mutations").Uint(s.mutations);
  w.Key("mutations_deduped").Uint(s.mutations_deduped);
  w.Key("view_registers").Uint(s.view_registers);
  w.Key("view_reads").Uint(s.view_reads);
  w.Key("input_errors").Uint(s.input_errors);
  w.Key("protocol_errors").Uint(s.protocol_errors);
  w.Key("queue_sheds").Uint(s.queue_sheds);
  w.Key("drain_rejects").Uint(s.drain_rejects);
  w.Key("draining").Bool(s.draining);
  w.Key("admission").BeginObject();
  w.Key("admitted").Uint(s.admission.admitted);
  w.Key("rejected").Uint(s.admission.rejected);
  w.Key("timed_out").Uint(s.admission.timed_out);
  w.Key("max_queued").Uint(s.admission.max_queued);
  w.Key("running").Int(s.admission.running);
  w.Key("queued").Int(s.admission.queued);
  w.EndObject();
  w.Key("mvcc").BeginObject();
  w.Key("mutations").Uint(s.mvcc.mutations);
  w.Key("snapshots").Uint(s.mvcc.snapshots);
  w.Key("snapshot_builds").Uint(s.mvcc.snapshot_builds);
  w.Key("wal_rejections").Uint(s.mvcc.wal_rejections);
  w.EndObject();
  w.Key("ivm").BeginObject();
  w.Key("views").Uint(s.ivm.views);
  w.Key("updates").Uint(s.ivm.updates);
  w.Key("dirty_subtree_sweeps").Uint(s.ivm.dirty_subtree_sweeps);
  w.Key("rows_delta_applied").Uint(s.ivm.rows_delta_applied);
  w.Key("full_recomputes").Uint(s.ivm.full_recomputes);
  w.EndObject();
  w.Key("wal").BeginObject();
  w.Key("enabled").Bool(s.wal_enabled);
  w.Key("records_appended").Uint(s.wal.records_appended);
  w.Key("bytes_appended").Uint(s.wal.bytes_appended);
  w.Key("syncs").Uint(s.wal.syncs);
  w.Key("compactions").Uint(s.wal.compactions);
  w.Key("log_bytes").Uint(s.wal.log_bytes);
  w.Key("append_failures").Uint(s.wal.append_failures);
  w.Key("recovered").BeginObject();
  w.Key("ran").Bool(s.recovery.ran);
  w.Key("snapshot_records").Uint(s.recovery.snapshot_records);
  w.Key("log_records").Uint(s.recovery.log_records);
  w.Key("torn_bytes_truncated").Uint(s.recovery.torn_bytes_truncated);
  w.Key("duplicate_records_skipped")
      .Uint(s.recovery.duplicate_records_skipped);
  w.Key("stale_log_bytes_skipped").Uint(s.recovery.stale_log_bytes_skipped);
  w.Key("request_ids").Uint(s.recovery.request_ids);
  w.Key("view_defs").Uint(s.recovery.view_defs);
  w.Key("views_rebuilt").Uint(s.recovery.views_rebuilt);
  w.Key("views_failed").Uint(s.recovery.views_failed);
  w.EndObject();
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache_ != nullptr);
  w.Key("hits").Uint(s.cache.hits);
  w.Key("misses").Uint(s.cache.misses);
  w.Key("evictions").Uint(s.cache.evictions);
  w.Key("bytes").Uint(s.cache.bytes);
  w.Key("capacity_bytes").Uint(s.cache.capacity_bytes);
  w.Key("entries").Uint(s.cache.entries);
  w.EndObject();
  if (util::FaultsEnabled()) {
    w.Key("faults").BeginObject();
    for (const auto& p : util::FaultRegistry::Global().stats()) {
      w.Key(p.point).BeginObject();
      w.Key("evals").Uint(p.evals);
      w.Key("fires").Uint(p.fires);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

bool QueryServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    *error = std::string("bind/listen ") + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  return true;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener was shut down (Stop or shutdown frame).
    }
    // Frames are small request/reply units; Nagle + delayed ACK adds
    // ~40ms per exchange on loopback without this.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::thread> reaped;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
      ++live_connections_;
      const std::uint64_t conn_id = next_conn_id_++;
      // Holding conn_mu_ across the spawn guarantees the handle is in
      // conn_threads_ before the new thread's exit path can look for it.
      conn_threads_.emplace(
          conn_id, std::thread(&QueryServer::ServeConnection, this, fd,
                               conn_id));
      reaped.swap(finished_threads_);
    }
    // Finished threads parked their handles on the way out; join them
    // outside the lock (they are past their last member access).
    for (std::thread& t : reaped) t.join();
  }
}

void QueryServer::ServeConnection(int fd, std::uint64_t conn_id) {
  api::FrameParser parser;
  char buf[1 << 16];
  bool open = true;
  while (open) {
    api::Frame frame;
    std::string err;
    api::FrameParser::Result r = parser.Next(&frame, &err);
    if (r == api::FrameParser::Result::kFrame) {
      std::vector<api::Frame> replies = HandleRequest(frame);
      for (const api::Frame& reply : replies) {
        if (!SendAll(fd, api::EncodeFrame(reply))) {
          open = false;
          break;
        }
      }
      if (frame.kind == "shutdown") open = false;
      continue;
    }
    if (r == api::FrameParser::Result::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, api::EncodeFrame(ErrorFrame(0, 2, "protocol", err)));
      break;
    }
    if (util::FaultsEnabled() && util::FaultPoint("socket.read")) {
      break;  // Injected connection drop; client reconnects and retries.
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Peer closed, reset, or read-side shutdown.
    parser.Feed(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
    --live_connections_;
    // Park this thread's own handle for the accept loop (or Stop) to
    // join; absent means Stop() already claimed it and is waiting in
    // join. Either way this is the last member access the thread makes.
    auto it = conn_threads_.find(conn_id);
    if (it != conn_threads_.end()) {
      finished_threads_.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
  }
}

void QueryServer::CloseListener() {
  // shutdown() (not close) wakes a blocked accept() without racing fd
  // reuse; the fd itself is closed once the accept thread is joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void QueryServer::Wait() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  // The accept loop exits when the listener shuts down; connections may
  // still be draining — Stop() handles those.
  lock.unlock();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void QueryServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the teardown below already ran (or is running in the
    // first caller); nothing left to release.
    return;
  }
  draining_.store(true, std::memory_order_relaxed);
  CloseListener();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  admission_.Close();  // Queued queries unwind with "server-shutting-down".
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Read-side shutdown only: a connection mid-request finishes and its
    // replies still flush out the write side (graceful drain); the recv
    // loop then sees EOF and closes. SHUT_RDWR would truncate in-flight
    // replies.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    for (auto& [id, t] : conn_threads_) to_join.push_back(std::move(t));
    conn_threads_.clear();
    for (std::thread& t : finished_threads_) to_join.push_back(std::move(t));
    finished_threads_.clear();
  }
  // Joining the connection threads IS the drain: each finishes its
  // in-flight request, flushes replies, and exits. After the last join no
  // thread can touch this object again — destruction is race-free.
  for (std::thread& t : to_join) t.join();
  // A kBatch WAL may hold unsynced acknowledged-at-batch-risk records;
  // flush them so a graceful stop never loses the tail.
  if (wal_.is_open()) {
    std::string sync_error;
    wal_.Sync(&sync_error);
  }
}

}  // namespace qc::server
