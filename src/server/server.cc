#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/json.h"

namespace qc::server {

namespace {

/// Request option fields a client may set per query. Everything else on
/// the SessionOptions surface (report paths, cache sizing, input-error
/// policy) is server configuration and is rejected per-request.
bool IsPerQueryOption(const std::string& key) {
  return key == "deadline_ms" || key == "max_rows" || key == "threads";
}

api::Frame ErrorFrame(std::uint64_t id, int code, const std::string& reason,
                      const std::string& message) {
  api::Frame frame;
  frame.kind = "error";
  frame.Add("id", std::to_string(id));
  frame.Add("code", std::to_string(code));
  frame.Add("reason", reason);
  frame.Add("message", message);
  return frame;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(const ServerOptions& options)
    : options_(options),
      cache_(options.session.MakeIndexCache()),
      admission_(options.admission) {}

QueryServer::~QueryServer() { Stop(); }

std::vector<api::Frame> QueryServer::HandleRequest(
    const api::Frame& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  if (request.kind == "query") return HandleQuery(request);
  if (request.kind == "mutate") return HandleMutate(request);
  if (request.kind == "ping") {
    api::Frame pong;
    pong.kind = "pong";
    pong.Add("id", std::to_string(id));
    return {pong};
  }
  if (request.kind == "stats") {
    api::Frame reply;
    reply.kind = "stats-reply";
    reply.Add("id", std::to_string(id));
    reply.body = StatsJson();
    return {reply};
  }
  if (request.kind == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_relaxed);
    CloseListener();  // Unblocks the accept loop; Wait() returns.
    api::Frame end;
    end.kind = "end";
    end.Add("id", std::to_string(id));
    end.Add("code", "0");
    return {end};
  }
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  return {ErrorFrame(id, 2, "bad-request",
                     "unknown request kind '" + request.kind + "'")};
}

std::vector<api::Frame> QueryServer::HandleQuery(const api::Frame& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);

  api::SessionOptions opts = options_.session;
  opts.report_json.clear();  // Per-request reports travel on the wire.
  bool want_analysis = false;
  for (const auto& [key, value] : request.fields) {
    if (key == "id") continue;
    if (key == "want_analysis") {
      want_analysis = value == "1" || value == "true";
      continue;
    }
    if (IsPerQueryOption(key)) {
      std::string err;
      if (!api::SetSessionOption(&opts, key, value, &err)) {
        input_errors_.fetch_add(1, std::memory_order_relaxed);
        return {ErrorFrame(id, 2, "bad-request", err)};
      }
      continue;
    }
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 2, "bad-request",
                       "unknown request field '" + key + "'")};
  }

  // 1. Admission: queue-or-reject before any work is done. A saturated
  // queue pushes back on this request alone with a structured diagnostic
  // instead of degrading every running client.
  AdmissionTicket ticket(&admission_, admission_.Admit());
  if (!ticket.admitted()) {
    const auto& d = ticket.decision();
    int code = kAdmissionRejectedCode;
    std::string reason = "admission-rejected";
    if (d.outcome == AdmissionController::Outcome::kTimedOut) {
      code = kAdmissionTimeoutCode;
      reason = "admission-timeout";
    } else if (d.outcome == AdmissionController::Outcome::kClosed) {
      code = util::ExitCode(util::RunStatus::kCancelled);
      reason = "server-shutting-down";
    }
    api::Frame frame = ErrorFrame(
        id, code, reason,
        "admission queue saturated (" + std::to_string(d.running) +
            " running, " + std::to_string(d.queue_depth) + " queued)");
    frame.Add("queue_depth", std::to_string(d.queue_depth));
    frame.Add("running", std::to_string(d.running));
    return {frame};
  }

  // 2. Snapshot: pin an immutable MVCC view. Writers keep going; this
  // query reads frozen relation handles whose version stamps keep the
  // shared IndexCache warm across snapshots.
  db::MvccSnapshot snapshot = mvcc_.Snapshot();

  // 3. Execute under the merged per-request budget.
  api::QueryRequest qreq;
  qreq.id = id;
  qreq.query_text = request.body;
  qreq.options = opts;
  qreq.want_analysis = want_analysis;
  api::QueryResponse resp = api::ExecuteQuery(qreq, *snapshot.db,
                                              cache_.get());
  if (!resp.input_ok) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    return {ErrorFrame(id, 1, "input", resp.error)};
  }
  resp.report.tool = "qc_serverd";
  resp.report.server.present = true;
  resp.report.server.request_id = id;
  resp.report.server.queue_ms = ticket.decision().queue_ms;
  resp.report.server.snapshot_epoch = snapshot.epoch;

  // 4. Stream: hdr, bounded row batches, per-request report, end.
  std::vector<api::Frame> frames;
  api::Frame hdr;
  hdr.kind = "hdr";
  hdr.Add("id", std::to_string(id));
  hdr.Add("status", std::string(util::ToString(resp.status)));
  hdr.Add("method", resp.method);
  hdr.Add("rows", std::to_string(resp.result.tuples.size()));
  hdr.Add("truncated", resp.result.truncated ? "1" : "0");
  hdr.Add("epoch", std::to_string(snapshot.epoch));
  std::string attrs;
  for (const auto& a : resp.result.attributes) {
    if (!attrs.empty()) attrs += ' ';
    attrs += a;
  }
  hdr.Add("attributes", attrs);
  hdr.body = resp.analysis_text;
  frames.push_back(std::move(hdr));

  const std::size_t batch_rows =
      options_.batch_rows > 0 ? static_cast<std::size_t>(options_.batch_rows)
                              : 256;
  for (std::size_t begin = 0; begin < resp.result.tuples.size();
       begin += batch_rows) {
    std::size_t end = std::min(begin + batch_rows, resp.result.tuples.size());
    api::Frame batch;
    batch.kind = "batch";
    batch.Add("id", std::to_string(id));
    batch.Add("rows", std::to_string(end - begin));
    for (std::size_t i = begin; i < end; ++i) {
      std::string line;
      for (db::Value v : resp.result.tuples[i]) {
        if (!line.empty()) line += ' ';
        line += std::to_string(v);
      }
      batch.body += line;
      batch.body += '\n';
    }
    frames.push_back(std::move(batch));
  }

  api::Frame report;
  report.kind = "report";
  report.Add("id", std::to_string(id));
  report.body = resp.report.ToJson();
  frames.push_back(std::move(report));

  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", std::to_string(resp.ExitCode()));
  frames.push_back(std::move(end));
  return frames;
}

std::vector<api::Frame> QueryServer::HandleMutate(const api::Frame& request) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.FindUint("id", 0);
  bool continue_on_error = options_.session.continue_on_input_error;
  if (const std::string* v = request.Find("on_input_error")) {
    api::SessionOptions tmp;
    std::string err;
    if (!api::SetSessionOption(&tmp, "on_input_error", *v, &err)) {
      input_errors_.fetch_add(1, std::memory_order_relaxed);
      return {ErrorFrame(id, 2, "bad-request", err)};
    }
    continue_on_error = tmp.continue_on_input_error;
  }

  api::DatasetLoad load;
  mvcc_.Mutate([&](db::Database& live) {
    load = api::LoadDataset(request.body, &live, continue_on_error);
    return load.ok ? db::MutationResult::Ok()
                   : db::MutationResult::Fail("dataset rejected");
  });

  std::string diag_body;
  for (const api::InputDiagnostic& d : load.diagnostics) {
    diag_body += d.ToString();
    diag_body += '\n';
  }
  if (!load.ok) {
    input_errors_.fetch_add(1, std::memory_order_relaxed);
    api::Frame frame = ErrorFrame(
        id, 1, "input",
        "dataset rejected with " + std::to_string(load.diagnostics.size()) +
            " error(s); nothing applied");
    frame.Add("diagnostics", std::to_string(load.diagnostics.size()));
    frame.body = diag_body;
    return {frame};
  }
  api::Frame end;
  end.kind = "end";
  end.Add("id", std::to_string(id));
  end.Add("code", "0");
  end.Add("applied", std::to_string(load.tuples_applied));
  end.Add("skipped", std::to_string(load.tuples_skipped));
  end.Add("diagnostics", std::to_string(load.diagnostics.size()));
  end.Add("epoch", std::to_string(mvcc_.Epoch()));
  end.body = diag_body;
  return {end};
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.admission = admission_.stats();
  s.mvcc = mvcc_.stats();
  if (cache_ != nullptr) s.cache = cache_->stats();
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.mutations = mutations_.load(std::memory_order_relaxed);
  s.input_errors = input_errors_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

std::string QueryServer::StatsJson() const {
  ServerStats s = stats();
  util::JsonWriter w;
  w.BeginObject();
  w.Key("connections").Uint(s.connections);
  w.Key("requests").Uint(s.requests);
  w.Key("queries").Uint(s.queries);
  w.Key("mutations").Uint(s.mutations);
  w.Key("input_errors").Uint(s.input_errors);
  w.Key("protocol_errors").Uint(s.protocol_errors);
  w.Key("admission").BeginObject();
  w.Key("admitted").Uint(s.admission.admitted);
  w.Key("rejected").Uint(s.admission.rejected);
  w.Key("timed_out").Uint(s.admission.timed_out);
  w.Key("max_queued").Uint(s.admission.max_queued);
  w.Key("running").Int(s.admission.running);
  w.Key("queued").Int(s.admission.queued);
  w.EndObject();
  w.Key("mvcc").BeginObject();
  w.Key("mutations").Uint(s.mvcc.mutations);
  w.Key("snapshots").Uint(s.mvcc.snapshots);
  w.Key("snapshot_builds").Uint(s.mvcc.snapshot_builds);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache_ != nullptr);
  w.Key("hits").Uint(s.cache.hits);
  w.Key("misses").Uint(s.cache.misses);
  w.Key("evictions").Uint(s.cache.evictions);
  w.Key("bytes").Uint(s.cache.bytes);
  w.Key("capacity_bytes").Uint(s.cache.capacity_bytes);
  w.Key("entries").Uint(s.cache.entries);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

bool QueryServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    *error = std::string("bind/listen ") + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  return true;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener was shut down (Stop or shutdown frame).
    }
    // Frames are small request/reply units; Nagle + delayed ACK adds
    // ~40ms per exchange on loopback without this.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
      ++live_connections_;
    }
    std::thread(&QueryServer::ServeConnection, this, fd).detach();
  }
}

void QueryServer::ServeConnection(int fd) {
  api::FrameParser parser;
  char buf[1 << 16];
  bool open = true;
  while (open) {
    api::Frame frame;
    std::string err;
    api::FrameParser::Result r = parser.Next(&frame, &err);
    if (r == api::FrameParser::Result::kFrame) {
      std::vector<api::Frame> replies = HandleRequest(frame);
      for (const api::Frame& reply : replies) {
        if (!SendAll(fd, api::EncodeFrame(reply))) {
          open = false;
          break;
        }
      }
      if (frame.kind == "shutdown") open = false;
      continue;
    }
    if (r == api::FrameParser::Result::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, api::EncodeFrame(ErrorFrame(0, 2, "protocol", err)));
      break;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    parser.Feed(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
    --live_connections_;
  }
  conn_cv_.notify_all();
}

void QueryServer::CloseListener() {
  // shutdown() (not close) wakes a blocked accept() without racing fd
  // reuse; the fd itself is closed once the accept thread is joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void QueryServer::Wait() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  // The accept loop exits when the listener shuts down; connections may
  // still be draining — Stop() handles those.
  lock.unlock();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void QueryServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the teardown below already ran (or is running in the
    // first caller); nothing left to release.
    return;
  }
  CloseListener();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  admission_.Close();  // Queued queries unwind with "server-shutting-down".
  std::unique_lock<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  conn_cv_.wait(lock, [&] { return live_connections_ == 0; });
}

}  // namespace qc::server
