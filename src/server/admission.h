#ifndef QC_SERVER_ADMISSION_H_
#define QC_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace qc::server {

/// Process-style codes for admission outcomes, continuing the repo's
/// exit-code convention (0 ok, 1-3 usage/parse/input, 4-6 budget causes,
/// 7 internal): 8 = rejected because the admission queue is saturated,
/// 9 = gave up waiting in the queue.
inline constexpr int kAdmissionRejectedCode = 8;
inline constexpr int kAdmissionTimeoutCode = 9;

struct AdmissionOptions {
  /// Queries executing at once; further arrivals queue. 0 is legal and
  /// rejects every query (useful for drain/testing).
  int max_concurrent = 8;
  /// Arrivals allowed to wait once the executors are busy; the
  /// (max_concurrent + queue_capacity + 1)-th concurrent query is rejected
  /// with a structured diagnostic instead of degrading everyone.
  int queue_capacity = 64;
  /// How long a queued query waits before giving up (0 = forever).
  std::uint64_t queue_timeout_ms = 0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< Queue full on arrival.
  std::uint64_t timed_out = 0;  ///< Gave up waiting.
  std::uint64_t max_queued = 0; ///< High-water queue depth.
  int running = 0;              ///< Currently executing.
  int queued = 0;               ///< Currently waiting.
};

/// Global admission control for qc_serverd: a counting gate with a bounded
/// FIFO-ish wait queue. Under saturation the overload is pushed back to the
/// newest arrivals as an explicit, structured rejection — the established
/// alternative to silently queueing without bound and degrading every
/// client's latency.
///
/// Threading: all members thread-safe. Admit() blocks only in the "queued"
/// state; Release() must be called exactly once per kAdmitted decision
/// (AdmissionTicket does this via RAII).
class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,
    kRejectedSaturated,  ///< Executors busy and queue full on arrival.
    kTimedOut,           ///< Waited queue_timeout_ms without a slot.
    kClosed,             ///< Controller shut down while waiting.
  };

  struct Decision {
    Outcome outcome = Outcome::kRejectedSaturated;
    double queue_ms = 0.0;  ///< Time spent waiting before the outcome.
    int queue_depth = 0;    ///< Waiters at decision time (self excluded).
    int running = 0;        ///< Executors at decision time.
  };

  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Queue-or-reject: returns kAdmitted (caller MUST Release), or a
  /// rejection decision carrying the queue state for the diagnostic.
  Decision Admit();

  /// Frees one executor slot and wakes a waiter.
  void Release();

  /// Wakes every waiter with kClosed; later Admit()s also return kClosed.
  void Close();

  AdmissionStats stats() const;

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int running_ = 0;
  int queued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t max_queued_ = 0;
};

/// RAII admission slot: releases on destruction when admitted.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionController* controller,
                  AdmissionController::Decision decision)
      : controller_(controller), decision_(decision) {}
  ~AdmissionTicket() {
    if (admitted()) controller_->Release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const {
    return decision_.outcome == AdmissionController::Outcome::kAdmitted;
  }
  const AdmissionController::Decision& decision() const { return decision_; }

 private:
  AdmissionController* controller_;
  AdmissionController::Decision decision_;
};

}  // namespace qc::server

#endif  // QC_SERVER_ADMISSION_H_
