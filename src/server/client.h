#ifndef QC_SERVER_CLIENT_H_
#define QC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/wire.h"

namespace qc::server {

/// Client-side retry policy. Retries fire on transport failures (ECONNRESET,
/// server restart, mid-stream EOF) and on server rejections whose error
/// frame carries `retryable 1` (draining, admission pushback, internal
/// resource errors, queue-deadline sheds). Backoff is exponential with
/// deterministic jitter: sleep = min(max_backoff_ms, base << attempt),
/// halved and re-filled from a seeded xorshift so two clients with
/// different seeds never synchronize their retry storms — and a test with
/// a fixed seed replays the same schedule every run.
struct RetryOptions {
  /// Additional attempts after the first (0 = never retry).
  int max_retries = 0;
  std::uint64_t base_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 2000;
  /// Jitter stream seed; also salts auto-generated mutation request ids
  /// (those additionally mix per-process entropy — pid, monotonic time,
  /// client address — so two clients left at this default can never feed
  /// the server colliding ids and have a real mutation deduped away).
  std::uint64_t seed = 1;
};

/// Outcome of one `query` round trip.
struct QueryReply {
  bool ok = false;           ///< Transport + protocol completed.
  std::string error;         ///< Transport/protocol failure text when !ok.

  bool rejected = false;     ///< Server answered with an error frame.
  bool retryable = false;    ///< error frame said a retry may succeed.
  int code = 0;              ///< Exit-style code (end frame, or error code).
  std::string reason;        ///< error frame reason (e.g. admission-rejected).
  std::string message;       ///< error frame message.
  int queue_depth = 0;       ///< From admission rejection diagnostics.
  int running = 0;
  int attempts = 1;          ///< Round trips taken (retries + 1).

  std::string status;        ///< hdr: completed/deadline-exceeded/...
  std::string method;        ///< hdr: solver method.
  std::uint64_t rows = 0;    ///< hdr: total result rows.
  bool truncated = false;
  std::uint64_t epoch = 0;   ///< Snapshot epoch the query ran against.
  std::vector<std::string> attributes;
  /// Result rows as space-separated value lines, concatenated batches.
  std::string row_text;
  std::string analysis_text;
  std::string report_json;   ///< Per-request RunReport.
};

/// Outcome of one `mutate` round trip.
struct MutateReply {
  bool ok = false;
  std::string error;
  bool rejected = false;     ///< Dataset rejected (abort semantics).
  bool retryable = false;
  bool deduped = false;      ///< Server had already applied this request_id.
  int code = 0;
  int attempts = 1;
  std::uint64_t request_id = 0;  ///< Idempotency id the mutation carried.
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
  std::uint64_t epoch = 0;
  std::string diagnostics;   ///< Line-numbered input diagnostics.
};

/// Outcome of one `view_register` round trip.
struct ViewRegisterReply {
  bool ok = false;
  std::string error;
  bool rejected = false;     ///< Server answered with an error frame.
  bool retryable = false;    ///< e.g. WAL append failure, draining.
  int code = 0;
  std::string reason;
  std::string message;
  int attempts = 1;
  std::uint64_t rows = 0;    ///< Initial materialized row count.
  std::uint64_t epoch = 0;   ///< Write epoch the view registered at.
};

/// Reply to a `health` probe.
struct HealthReply {
  bool ok = false;
  std::string error;
  std::string status;        ///< "serving" | "draining".
  std::uint64_t epoch = 0;
  bool wal = false;          ///< Durability on.
  int running = 0;
  int queued = 0;
};

/// Minimal blocking qcp/1 client: one TCP connection, synchronous
/// request/reply. Not thread-safe; use one Client per thread (qc_loadgen
/// does exactly that).
///
/// With a RetryOptions policy set, Query() and Mutate() transparently
/// reconnect (fresh socket AND fresh FrameParser — a parser poisoned by a
/// torn stream must never survive into the new connection) and re-send
/// after transport failures or retryable server rejections. Mutation
/// retries are made safe by idempotency ids: every Mutate carries a
/// request_id (caller-supplied or auto-generated) that the server
/// deduplicates against its WAL-recovered window, so "ack lost, retry
/// arrives" cannot double-apply.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  void set_retry(const RetryOptions& retry);
  const RetryOptions& retry() const { return retry_; }

  /// Runs one query; extra_fields may carry per-request options
  /// (deadline_ms/max_rows/threads) or want_analysis.
  QueryReply Query(
      const std::string& query_text,
      const std::vector<std::pair<std::string, std::string>>& extra_fields =
          {});

  /// Applies a dataset-format mutation batch; on_input_error is "",
  /// "abort", or "continue". request_id 0 auto-generates one when a retry
  /// policy is set (a retried mutation must always be deduplicable).
  MutateReply Mutate(const std::string& dataset_text,
                     const std::string& on_input_error = "",
                     std::uint64_t request_id = 0);

  /// Registers a materialized view. `kind` is "join" (body = query text)
  /// or "triangle_count" (body = edge relation name). Idempotent from the
  /// caller's perspective only for an identical definition; re-registering
  /// an existing name is an input error the server rejects.
  ViewRegisterReply RegisterView(const std::string& name,
                                 const std::string& kind,
                                 const std::string& body);

  /// Reads a maintained view's rows at the current write epoch. The reply
  /// stream is shaped exactly like a query reply (hdr/batch/report/end),
  /// so the same QueryReply carries it; `method` is "ivm".
  QueryReply ViewRead(const std::string& name);

  bool Ping(std::string* error);
  HealthReply Health();
  bool Stats(std::string* stats_json, std::string* error);
  bool Shutdown(std::string* error);

 private:
  bool SendFrame(const api::Frame& frame, std::string* error);
  bool RecvFrame(api::Frame* frame, std::string* error);
  QueryReply QueryOnce(
      const std::string& query_text,
      const std::vector<std::pair<std::string, std::string>>& extra_fields);
  /// Sends `req` and parses a query-shaped reply stream
  /// (hdr/batch/report/end, or one error frame) — shared by QueryOnce and
  /// ViewRead.
  QueryReply QueryRoundTrip(api::Frame req);
  ViewRegisterReply RegisterViewOnce(const std::string& name,
                                     const std::string& kind,
                                     const std::string& body);
  MutateReply MutateOnce(const std::string& dataset_text,
                         const std::string& on_input_error,
                         std::uint64_t request_id);
  /// Reconnects to the last Connect() endpoint if currently closed.
  bool EnsureConnected(std::string* error);
  /// Sleeps the exponential-backoff-with-jitter delay for `attempt`.
  void Backoff(int attempt);
  std::uint64_t NextRand();
  /// Nonzero idempotency id from its own entropy-seeded stream — never
  /// the deterministic backoff RNG, whose default seed every client
  /// shares (colliding ids would make the server silently drop a
  /// distinct mutation as a duplicate).
  std::uint64_t NextRequestId();

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  api::FrameParser parser_;
  RetryOptions retry_;
  std::uint64_t rng_ = 1;
  std::uint64_t id_rng_ = 0;  ///< Lazily seeded by NextRequestId.
  std::string host_;
  int port_ = 0;
};

}  // namespace qc::server

#endif  // QC_SERVER_CLIENT_H_
