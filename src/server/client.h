#ifndef QC_SERVER_CLIENT_H_
#define QC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/wire.h"

namespace qc::server {

/// Outcome of one `query` round trip.
struct QueryReply {
  bool ok = false;           ///< Transport + protocol completed.
  std::string error;         ///< Transport/protocol failure text when !ok.

  bool rejected = false;     ///< Server answered with an error frame.
  int code = 0;              ///< Exit-style code (end frame, or error code).
  std::string reason;        ///< error frame reason (e.g. admission-rejected).
  std::string message;       ///< error frame message.
  int queue_depth = 0;       ///< From admission rejection diagnostics.
  int running = 0;

  std::string status;        ///< hdr: completed/deadline-exceeded/...
  std::string method;        ///< hdr: solver method.
  std::uint64_t rows = 0;    ///< hdr: total result rows.
  bool truncated = false;
  std::uint64_t epoch = 0;   ///< Snapshot epoch the query ran against.
  std::vector<std::string> attributes;
  /// Result rows as space-separated value lines, concatenated batches.
  std::string row_text;
  std::string analysis_text;
  std::string report_json;   ///< Per-request RunReport.
};

/// Outcome of one `mutate` round trip.
struct MutateReply {
  bool ok = false;
  std::string error;
  bool rejected = false;     ///< Dataset rejected (abort semantics).
  int code = 0;
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
  std::uint64_t epoch = 0;
  std::string diagnostics;   ///< Line-numbered input diagnostics.
};

/// Minimal blocking qcp/1 client: one TCP connection, synchronous
/// request/reply. Not thread-safe; use one Client per thread (qc_loadgen
/// does exactly that).
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs one query; extra_fields may carry per-request options
  /// (deadline_ms/max_rows/threads) or want_analysis.
  QueryReply Query(
      const std::string& query_text,
      const std::vector<std::pair<std::string, std::string>>& extra_fields =
          {});

  /// Applies a dataset-format mutation batch; on_input_error is "",
  /// "abort", or "continue".
  MutateReply Mutate(const std::string& dataset_text,
                     const std::string& on_input_error = "");

  bool Ping(std::string* error);
  bool Stats(std::string* stats_json, std::string* error);
  bool Shutdown(std::string* error);

 private:
  bool SendFrame(const api::Frame& frame, std::string* error);
  bool RecvFrame(api::Frame* frame, std::string* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  api::FrameParser parser_;
};

}  // namespace qc::server

#endif  // QC_SERVER_CLIENT_H_
